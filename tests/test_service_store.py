"""Result-store semantics: JSONL persistence, reload, TTL eviction,
compaction, and tolerance of torn/foreign lines."""

from __future__ import annotations

import json
import time

from repro.service.protocol import Job, JobSpec, JobState
from repro.service.store import STORE_VERSION, ResultStore


def _record(key_seed: int = 0, jid: str | None = None, finished_at: float | None = None):
    spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": key_seed + 1})
    job = Job(
        id=jid or f"job{key_seed}",
        spec=spec,
        state=JobState.DONE,
        submitted_at=(finished_at or time.time()) - 1.0,
        finished_at=finished_at or time.time(),
        source="simulated",
        result={"throughput": 2.5, "ipc": [1.2, 1.3]},
    )
    return ResultStore.make_record(job, pair_record={"secs": 0.8, "retries": 0})


class TestInMemory:
    def test_add_and_lookup(self):
        store = ResultStore(None)
        rec = _record(0)
        store.add(rec)
        assert store.get_by_id(rec["id"]) == rec
        assert store.get_by_key(rec["key"]) == rec
        assert len(store) == 1

    def test_newest_record_wins_per_key(self):
        store = ResultStore(None)
        a = _record(0, jid="old")
        b = dict(_record(0, jid="new"))
        store.add(a)
        store.add(b)
        assert len(store) == 1
        assert store.get_by_key(a["key"])["id"] == "new"
        assert store.get_by_id("old") is None  # superseded id unindexed

    def test_unknown_lookups(self):
        store = ResultStore(None)
        assert store.get_by_id("nope") is None
        assert store.get_by_key("nope") is None


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        recs = [_record(i) for i in range(3)]
        for r in recs:
            store.add(r)

        reloaded = ResultStore(path)
        assert reloaded.load() == 3
        for r in recs:
            assert reloaded.get_by_id(r["id"]) == r

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.add(_record(0))
        with path.open("a") as fh:
            fh.write('{"version": 1, "key": "abc", "id": "trunc')  # torn write

        reloaded = ResultStore(path)
        assert reloaded.load() == 1
        assert reloaded.skipped_lines == 1

    def test_foreign_and_versioned_lines_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        good = _record(0)
        other = dict(_record(1))
        other["version"] = STORE_VERSION + 1
        path.write_text(
            json.dumps(good) + "\n"
            + json.dumps(other) + "\n"
            + json.dumps([1, 2, 3]) + "\n"
            + "\n"
        )
        store = ResultStore(path)
        assert store.load() == 1
        assert store.skipped_lines == 2
        assert store.get_by_id(good["id"]) is not None

    def test_compact_rewrites_live_only(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.add(_record(0, jid="old"))
        store.add(_record(0, jid="new"))  # same key: supersedes
        store.add(_record(1))
        assert len(path.read_text().splitlines()) == 3
        assert store.compact() == 2
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 2
        assert {r["id"] for r in lines} == {"new", "job1"}


class TestTTL:
    def test_lazy_eviction_on_access(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl", ttl=10.0)
        fresh = _record(0, finished_at=time.time())
        stale = _record(1, finished_at=time.time() - 100.0)
        store.add(fresh)
        store.add(stale)
        assert store.get_by_key(stale["key"]) is None
        assert store.get_by_id(stale["id"]) is None
        assert store.get_by_key(fresh["key"]) is not None
        assert store.evicted == 1

    def test_expired_dropped_on_load(self, tmp_path):
        path = tmp_path / "r.jsonl"
        writer = ResultStore(path)
        writer.add(_record(0, finished_at=time.time()))
        writer.add(_record(1, finished_at=time.time() - 100.0))

        reader = ResultStore(path, ttl=10.0)
        assert reader.load() == 1
        assert reader.evicted == 1

    def test_evict_expired_and_compact(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path, ttl=10.0)
        store.add(_record(0, finished_at=time.time()))
        store.add(_record(1, finished_at=time.time() - 100.0))
        assert store.compact() == 1  # compaction evicts then rewrites
        assert len(path.read_text().splitlines()) == 1

    def test_no_ttl_keeps_everything(self):
        store = ResultStore(None, ttl=None)
        store.add(_record(0, finished_at=time.time() - 10**6))
        assert store.evict_expired() == 0
        assert len(store) == 1
