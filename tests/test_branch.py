"""Tests for the branch-prediction substrate: gshare, BTB, RAS, front end."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.branch import BTB, FrontEndPredictor, GShare, ReturnAddressStack
from repro.config.processor import BranchPredictorConfig
from repro.isa.opcodes import BranchKind


class TestGShare:
    def test_learns_always_taken(self):
        g = GShare(1024, 1, history_bits=4)
        pc = 0x400
        for _ in range(4):
            hist = g.history(0)
            g.train(0, pc, hist, True)
        assert g.predict(0, pc) is True

    def test_learns_always_not_taken(self):
        g = GShare(1024, 1, history_bits=0)
        pc = 0x404
        for _ in range(4):
            g.train(0, pc, 0, False)
        assert g.predict(0, pc) is False

    def test_history_is_per_context(self):
        g = GShare(1024, 2, history_bits=4)
        g.speculative_update(0, True)
        g.speculative_update(0, True)
        assert g.history(0) == 0b11
        assert g.history(1) == 0

    def test_history_restore(self):
        g = GShare(1024, 1, history_bits=4)
        snap = g.history(0)
        g.speculative_update(0, True)
        g.restore_history(0, snap)
        assert g.history(0) == snap

    def test_history_masked(self):
        g = GShare(1024, 1, history_bits=2)
        for _ in range(10):
            g.speculative_update(0, True)
        assert g.history(0) == 0b11

    def test_counter_saturates(self):
        g = GShare(256, 1, history_bits=0)
        for _ in range(10):
            g.train(0, 0x10, 0, True)
        assert g.counter_at(0x10, 0) == 3
        for _ in range(10):
            g.train(0, 0x10, 0, False)
        assert g.counter_at(0x10, 0) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            GShare(1000, 1)

    def test_periodic_pattern_learned_with_history(self):
        # T T T N repeating: with >=2 history bits gshare distinguishes the
        # exit point; accuracy should be near-perfect after training.
        g = GShare(1024, 1, history_bits=4)
        pattern = [True, True, True, False] * 60
        correct = 0
        for taken in pattern:
            hist = g.history(0)
            pred = g.predict(0, pc=0x800)
            correct += pred == taken
            g.speculative_update(0, taken)  # perfect (non-spec) history
            g.train(0, 0x800, hist, taken)
        assert correct / len(pattern) > 0.85


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(256, 4)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.lookup(0x100) == 0x2000

    def test_update_replaces_target(self):
        btb = BTB(256, 4)
        btb.update(0x100, 0x2000)
        btb.update(0x100, 0x3000)
        assert btb.lookup(0x100) == 0x3000

    def test_lru_eviction_within_set(self):
        btb = BTB(8, 2)  # 4 sets, 2 ways
        # Three PCs mapping to the same set (stride = sets * 4 bytes).
        pcs = [0x0, 0x0 + 4 * 4, 0x0 + 8 * 4]
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.update(pcs[2], 3)  # evicts pcs[0]
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) == 2
        assert btb.lookup(pcs[2]) == 3

    def test_lookup_refreshes_lru(self):
        btb = BTB(8, 2)
        pcs = [0x0, 0x10, 0x20]
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.lookup(pcs[0])       # refresh 0 -> LRU victim is now 1
        btb.update(pcs[2], 3)
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None

    def test_stats(self):
        btb = BTB(256, 4)
        btb.lookup(0x1)
        btb.update(0x1, 0x2)
        btb.lookup(0x1)
        assert btb.misses == 1
        assert btb.hits == 1

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            BTB(10, 4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(16)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop_returns_zero(self):
        assert ReturnAddressStack(16).pop() == 0

    def test_tos_checkpoint_restore(self):
        ras = ReturnAddressStack(16)
        ras.push(0x100)
        snap = ras.tos
        ras.push(0x200)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 0x100

    def test_wraps_when_full(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert len(ras) == 1  # slot holds stale value 3's position

    @given(st.lists(st.integers(min_value=4, max_value=2**30), max_size=20))
    def test_property_lifo_within_capacity(self, pushes):
        ras = ReturnAddressStack(64)
        for p in pushes:
            ras.push(p)
        for p in reversed(pushes):
            assert ras.pop() == p


class TestFrontEndPredictor:
    def make(self, contexts=1):
        return FrontEndPredictor(BranchPredictorConfig(), contexts)

    def test_cond_not_taken_gives_fallthrough(self):
        fe = self.make()
        pred = fe.predict(0, 0x1000, BranchKind.COND, 0x1004)
        # Initial PHT state is weakly-not-taken.
        assert pred.taken is False
        assert pred.target == 0x1004

    def test_jump_btb_miss_flag(self):
        fe = self.make()
        pred = fe.predict(0, 0x1000, BranchKind.JUMP, 0x1004)
        assert pred.taken is True
        assert pred.btb_miss is True

    def test_jump_after_training(self):
        fe = self.make()
        fe.train(0, 0x1000, 0, BranchKind.JUMP, True, 0x5000)
        pred = fe.predict(0, 0x1000, BranchKind.JUMP, 0x1004)
        assert pred.taken and not pred.btb_miss
        assert pred.target == 0x5000

    def test_call_pushes_return_then_ret_pops(self):
        fe = self.make()
        fe.train(0, 0x1000, 0, BranchKind.CALL, True, 0x5000)
        fe.predict(0, 0x1000, BranchKind.CALL, 0x1004)  # pushes 0x1004
        pred = fe.predict(0, 0x6000, BranchKind.RET, 0x6004)
        assert pred.taken
        assert pred.target == 0x1004

    def test_ret_with_empty_ras_uses_btb(self):
        fe = self.make()
        fe.train(0, 0x6000, 0, BranchKind.RET, True, 0x7777)
        pred = fe.predict(0, 0x6000, BranchKind.RET, 0x6004)
        assert pred.target == 0x7777

    def test_squash_recover_restores_history_and_ras(self):
        fe = self.make()
        hist0 = fe.gshare.history(0)
        tos0 = fe.ras[0].tos
        fe.predict(0, 0x1000, BranchKind.CALL, 0x1004)
        fe.predict(0, 0x2000, BranchKind.COND, 0x2004)
        fe.squash_recover(0, hist0, tos0, resolved_taken=None)
        assert fe.gshare.history(0) == hist0
        assert fe.ras[0].tos == tos0

    def test_squash_recover_reinserts_resolved_outcome(self):
        fe = self.make()
        fe.squash_recover(0, 0, 0, resolved_taken=True)
        assert fe.gshare.history(0) == 1
