"""End-to-end integration tests: public API, determinism across components,
calibration sanity at reduced scale, and cross-policy behavioural contracts.
"""

from __future__ import annotations

import pytest

import repro
from repro import (
    PAPER_POLICIES,
    SimulationConfig,
    hmean_relative,
    quick_run,
    relative_ipcs,
)


CFG = SimulationConfig(warmup_cycles=1500, measure_cycles=12_000, trace_length=30_000, seed=2024)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quick_run_workload(self):
        res = quick_run("2-ILP", "dwarn", simcfg=CFG.scaled(0.2))
        assert res.policy == "dwarn"
        assert res.num_threads == 2

    def test_quick_run_single_benchmark(self):
        res = quick_run("gzip", "icount", simcfg=CFG.scaled(0.2))
        assert res.benchmarks == ("gzip",)

    def test_quick_run_unknown_workload(self):
        with pytest.raises(KeyError, match="4-MIX"):
            quick_run("not-a-workload")

    def test_quick_run_machines(self):
        for machine in ("baseline", "small", "deep"):
            res = quick_run("2-MIX", "dwarn", machine, CFG.scaled(0.15))
            assert res.machine == machine


class TestCalibrationAtScale:
    """Coarse Table 2(a) sanity at test scale (the full bands are benched)."""

    @pytest.mark.parametrize("bench,l1_lo,l1_hi", [
        ("mcf", 20.0, 45.0),
        ("twolf", 3.0, 9.0),
        ("gzip", 1.2, 4.5),
        ("eon", 0.0, 0.8),
    ])
    def test_l1_missrate_band(self, bench, l1_lo, l1_hi):
        res = quick_run(bench, "icount", simcfg=CFG)
        l1 = 100 * res.l1_load_missrate(0)
        assert l1_lo <= l1 <= l1_hi

    def test_mem_ilp_ipc_separation(self):
        mcf = quick_run("mcf", "icount", simcfg=CFG)
        gzip = quick_run("gzip", "icount", simcfg=CFG)
        assert gzip.ipc[0] > 3 * mcf.ipc[0]

    def test_gzip_l1_misses_rarely_reach_l2(self):
        res = quick_run("gzip", "icount", simcfg=CFG)
        l1 = res.load_l1_misses[0]
        l2 = res.load_l2_misses[0]
        assert l1 > 0
        assert l2 / l1 < 0.25  # paper: 2%

    def test_mcf_l1_misses_mostly_reach_l2(self):
        res = quick_run("mcf", "icount", simcfg=CFG)
        assert res.load_l2_misses[0] / res.load_l1_misses[0] > 0.7  # paper: 92%


class TestPolicyContracts:
    """Cross-policy invariants at integration scale."""

    @pytest.fixture(scope="class")
    def results(self):
        return {p: quick_run("2-MEM", p, simcfg=CFG) for p in PAPER_POLICIES}

    def test_all_policies_complete(self, results):
        for pol, res in results.items():
            assert res.cycles > 0 and all(c > 0 for c in res.committed), pol

    def test_same_workload_same_traces(self, results):
        names = {res.benchmarks for res in results.values()}
        assert names == {("mcf", "twolf")}

    def test_dwarn_beats_icount_on_2mem(self, results):
        # The 2-thread MEM case is the paper's motivating scenario; the
        # hybrid gate should give DWarn a solid edge over plain ICOUNT.
        assert results["dwarn"].throughput > results["icount"].throughput

    def test_dg_overgates_on_two_threads(self, results):
        # Paper §5.1: with few threads DG's stalls cannot be absorbed.
        assert results["dg"].throughput < results["dwarn"].throughput

    def test_fairness_metric_integration(self, results):
        alone = {
            "mcf": quick_run("mcf", "icount", simcfg=CFG).ipc[0],
            "twolf": quick_run("twolf", "icount", simcfg=CFG).ipc[0],
        }
        for pol, res in results.items():
            rel = relative_ipcs(res, alone)
            h = hmean_relative(res, alone)
            assert 0 < h <= 1.5
            assert len(rel) == 2


class TestSeedStability:
    def test_full_stack_determinism(self):
        a = quick_run("4-MIX", "flush", simcfg=CFG.scaled(0.2))
        b = quick_run("4-MIX", "flush", simcfg=CFG.scaled(0.2))
        assert a.committed == b.committed
        assert a.squashed_flush == b.squashed_flush
        assert a.load_l1_misses == b.load_l1_misses
