"""Unit tests for SimStats windowing."""

from __future__ import annotations

import pytest

from repro.core.stats import SimStats


class TestSimStats:
    def test_initial_zero(self):
        s = SimStats(2)
        assert s.cycles == 0
        assert s.committed == [0, 0]

    def test_window_without_snapshot_is_totals(self):
        s = SimStats(2)
        s.cycles = 10
        s.committed[0] = 5
        w = s.window()
        assert w["cycles"] == 10
        assert w["committed"] == [5, 0]

    def test_window_deltas(self):
        s = SimStats(2)
        s.cycles = 100
        s.committed[0] = 40
        s.fetched[1] = 7
        s.snapshot()
        s.cycles = 150
        s.committed[0] = 90
        s.committed[1] = 10
        s.fetched[1] = 17
        w = s.window()
        assert w["cycles"] == 50
        assert w["committed"] == [50, 10]
        assert w["fetched"] == [0, 10]

    def test_snapshot_is_a_copy(self):
        s = SimStats(1)
        s.committed[0] = 3
        s.snapshot()
        s.committed[0] = 8
        assert s.window()["committed"] == [5]

    def test_window_ipc_and_throughput(self):
        s = SimStats(2)
        s.snapshot()
        s.cycles = 100
        s.committed[0] = 150
        s.committed[1] = 50
        assert s.window_ipc() == [1.5, 0.5]
        assert s.window_throughput() == pytest.approx(2.0)

    def test_window_ipc_zero_cycles_safe(self):
        s = SimStats(1)
        assert s.window_ipc() == [0.0]

    def test_all_per_thread_fields_windowed(self):
        s = SimStats(1)
        for f in ("fetched", "committed", "squashed_mispredict", "squashed_flush",
                  "flush_events", "mispredicts", "branches_resolved",
                  "gated_cycles", "loads_committed", "stores_committed"):
            getattr(s, f)[0] = 2
        s.snapshot()
        for f in ("fetched", "committed"):
            getattr(s, f)[0] = 5
        w = s.window()
        assert w["fetched"] == [3]
        assert w["squashed_flush"] == [0]
