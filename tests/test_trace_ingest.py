"""Trace-ingest frontend: schema validation, round trips, workload wiring.

Three contracts:

1. **Fail closed** — any malformed input (truncation, corruption, bad CRC,
   wrong version, bogus header) raises :class:`IngestError`; the parser
   never crashes with another exception and never silently returns a
   different payload than was written (fuzzed with hypothesis).
2. **Lossless round trip** — export -> ingest reproduces the source trace
   bit-identically, and an ingested workload simulates bit-identically to
   its native synthetic twin on both the staged and fused engines.
3. **Name resolution** — ingested names resolve through ``build_single``
   (so runner / service / CLI all see them) without shadowing native
   benchmarks, and path-shaped names never resolve.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.config import SimulationConfig, baseline  # noqa: E402
from repro.core import Simulator, make_policy  # noqa: E402
from repro.trace import generate_trace, get_profile  # noqa: E402
from repro.trace import ingest  # noqa: E402
from repro.workloads import build_single  # noqa: E402
from repro.workloads.builder import build_ingested_program  # noqa: E402

_ARRAY_KEYS = (
    "pc", "op", "dest", "src1", "src2", "addr", "brkind", "taken", "target",
)


@pytest.fixture()
def sample_path(tmp_path):
    """A small exported synthetic trace (canonical mode) on disk."""
    trace = generate_trace(get_profile("mcf"), 600, 0, 4242)
    return ingest.export_trace(trace, tmp_path / "sample.dwit", name="sample")


# ---------------------------------------------------------------------------
# round trips


def test_export_ingest_roundtrip_bit_identical(sample_path):
    trace = generate_trace(get_profile("mcf"), 600, 0, 4242)
    tf = ingest.read_trace_file(sample_path)
    assert tf.header.records == 600
    assert tf.header.address_mode == "canonical"
    assert tf.arrays["pc"] == list(trace.pc)
    assert tf.arrays["op"] == list(trace.op)
    assert tf.arrays["addr"] == list(trace.addr)
    assert tf.arrays["target"] == list(trace.target)
    assert tf.arrays["taken"] == [1 if t else 0 for t in trace.taken]


def test_reexport_preserves_payload_crc(sample_path, tmp_path):
    hdr = ingest.read_header(sample_path)
    tf = ingest.read_trace_file(sample_path)
    trace = ingest.materialize(tf, base=tf.header.base, seed=99)
    out = ingest.export_trace(trace, tmp_path / "again.dwit", name=hdr.name)
    assert ingest.read_header(out).crc32 == hdr.crc32


def _run(programs, policy: str, simcfg: SimulationConfig, fused: bool):
    sim = Simulator(baseline(), programs, make_policy(policy), simcfg)
    if not fused:
        sim._step = sim._step  # pin => staged reference path
    return sim.run()


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "staged"])
def test_ingested_matches_native_twin(tmp_path, fused):
    """An exported-then-ingested benchmark is indistinguishable from the
    native synthetic program it came from — same SimResult, both engines."""
    simcfg = SimulationConfig(
        warmup_cycles=200, measure_cycles=1_000, trace_length=2_000, seed=777
    )
    native = build_single("mcf", simcfg)
    path = ingest.export_trace(native[0].trace, tmp_path / "twin.dwit")
    ingested = [build_ingested_program("twin-mcf", path, 0, simcfg)]

    a = _run(native, "dwarn", simcfg, fused)
    b = _run(ingested, "dwarn", simcfg, fused)
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    da.pop("benchmarks"), db.pop("benchmarks")  # names differ by design
    assert da == db


# ---------------------------------------------------------------------------
# fail-closed parsing (fuzz)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # The fixtures only provide paths; each example writes its own bytes.
        HealthCheck.function_scoped_fixture,
    ],
)
@given(data=st.data())
def test_mutated_file_never_parses_wrong(sample_path, tmp_path, data):
    """Truncate or corrupt the file anywhere: the parser must either raise
    IngestError or return the original payload — never crash, never return
    silently different record arrays."""
    raw = sample_path.read_bytes()
    original = ingest.read_trace_file(sample_path)
    mode = data.draw(st.sampled_from(["truncate", "flip", "insert"]))
    if mode == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        mutated = raw[:cut]
    elif mode == "flip":
        pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = raw[:pos] + bytes([raw[pos] ^ (1 << bit)]) + raw[pos + 1:]
    else:
        pos = data.draw(st.integers(min_value=0, max_value=len(raw)))
        junk = data.draw(st.binary(min_size=1, max_size=8))
        mutated = raw[:pos] + junk + raw[pos:]
    target = tmp_path / "mutated.dwit"
    target.write_bytes(mutated)
    try:
        got = ingest.read_trace_file(target)
    except ingest.IngestError:
        return  # fail-closed: the contractually allowed outcome
    # A mutation confined to non-semantic header bytes may still parse;
    # the payload must then be byte-for-byte what was written.
    for key in _ARRAY_KEYS:
        assert got.arrays[key] == original.arrays[key]


def _header_variant(raw: bytes, **overrides):
    head, _, body = raw.partition(b"\n")
    doc = json.loads(head)
    doc.update(overrides)
    return json.dumps(doc).encode("ascii") + b"\n" + body


@pytest.mark.parametrize(
    "overrides",
    [
        {"version": 99},
        {"magic": "NOPE"},
        {"records": 999999},
        {"crc32": 1},
        {"profile": "not-a-profile"},
        {"address_mode": "sideways"},
        {"fields": [["q", "pc"]]},
    ],
    ids=["version", "magic", "records", "crc", "profile", "mode", "fields"],
)
def test_bad_header_fields_rejected(sample_path, tmp_path, overrides):
    target = tmp_path / "bad.dwit"
    target.write_bytes(_header_variant(sample_path.read_bytes(), **overrides))
    with pytest.raises(ingest.IngestError):
        ingest.read_trace_file(target)


def test_not_a_trace_file(tmp_path):
    p = tmp_path / "nope.dwit"
    p.write_bytes(b"this is not a trace\n" + b"\x00" * 64)
    with pytest.raises(ingest.IngestError):
        ingest.read_header(p)
    with pytest.raises(ingest.IngestError):
        ingest.read_trace_file(p)


def test_convert_jsonl_reports_line_numbers(tmp_path):
    lines = [
        json.dumps({"pc": 4096, "op": "int"}),
        json.dumps({"pc": 4100, "op": "NOT_AN_OP"}),
    ]
    with pytest.raises(ingest.IngestError, match="line 2"):
        ingest.convert_jsonl(lines, tmp_path / "out.dwit", name="conv")


# ---------------------------------------------------------------------------
# workload resolution


def test_registered_name_resolves_through_build_single(sample_path):
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=200, trace_length=2_000, seed=777
    )
    ingest.register_workload("ingest-test-wl", sample_path)
    try:
        programs = build_single("ingest-test-wl", simcfg)
        assert len(programs) == 1
        assert len(programs[0].trace) == 600
    finally:
        ingest._REGISTRY.pop("ingest-test-wl", None)


def test_native_names_shadow_ingested(sample_path):
    """A registration colliding with a native profile never wins."""
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=200, trace_length=1_500, seed=777
    )
    ingest.register_workload("mcf", sample_path)
    try:
        programs = build_single("mcf", simcfg)
        assert len(programs[0].trace) == simcfg.trace_length  # native, not 600
    finally:
        ingest._REGISTRY.pop("mcf", None)


@pytest.mark.parametrize("name", ["../evil", "a/b", "a\\b", ".hidden", ""])
def test_pathlike_names_never_resolve(name):
    assert ingest.find_ingested(name) is None


def test_find_unknown_returns_none():
    assert ingest.find_ingested("definitely-not-registered") is None
