"""Fault-injection tests for the distributed worker pool.

The lease protocol's whole job is surviving a hostile network and
disposable workers, so these tests attack it directly:

- SIGKILL a worker subprocess mid-lease: the lease expires, the jobs are
  requeued, and the sweep still completes — every unique spec exactly once.
- Drop every heartbeat and delay the upload past the deadline
  (``FlakyTransport``): the server expires the lease, redelivers, and the
  worker's late upload meets ``410 Gone`` and is discarded.
- Duplicate the result upload: the second copy answers 410 and the
  completion counters move exactly once.
- A worker that leases but never uploads: after ``max_redeliveries``
  expiries the job is parked in the terminal ``dead_letter`` state.
- Two workers draining one mixed sweep: all jobs complete via workers,
  none twice.
- Preemption: SIGKILL a checkpointing worker after it uploaded mid-run
  progress — the redelivered lease ships the checkpoint, a *second* worker
  resumes from the captured cycle (not cycle 0), the job completes exactly
  once, and the result is bit-identical to an uninterrupted in-process
  reference run. Repeated both against a direct daemon and through the
  sharding router (``dwarn-sim route``).

``FlakyTransport`` wraps the real ``ServiceClient`` and injects faults by
URL substring — dropped requests raise :class:`ServiceError` exactly as an
exhausted-retries transport does, duplicated requests are sent twice with
the *second* response returned, and delays hold a request back past a lease
deadline. The ``Worker`` takes any transport with ``ServiceClient.request``'s
signature, so no sockets are harmed in the injection.

The server is always a real ``dwarn-sim serve`` subprocess (reusing the
e2e harness), because lease expiry rides on the daemon's housekeeping tick
and local-fallback logic — the things worth testing live.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from collections import Counter

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.worker import Worker, WorkerConfig

from test_service_e2e import TINY, LiveServer

def _specs(n: int) -> list[dict]:
    """``n`` unique specs sharing one config group (same machine/seed/
    windows), so a single lease can batch them all — what makes "kill the
    worker mid-lease" deterministic instead of racing lease granularity."""
    combos = [
        (wl, pol)
        for wl in ("2-MIX", "2-MEM")
        for pol in ("dwarn", "icount", "flush", "stall")
    ]
    assert n <= len(combos)
    return [
        {"workload": wl, "policy": pol, "seed": 4242, **TINY}
        for wl, pol in combos[:n]
    ]


class FlakyTransport:
    """A ``ServiceClient.request`` wrapper that injects faults by path.

    ``drop``: any request whose path contains one of these substrings
    raises :class:`ServiceError` (what the client raises once its own
    transport retries are exhausted) — the request never reaches the wire.

    ``duplicate``: matching requests are sent *twice*; the second response
    is returned, so the caller observes what a retransmitted upload would.

    ``delay``: maps path substrings to seconds slept before forwarding —
    how a request is pushed past a lease deadline deterministically.
    """

    def __init__(
        self,
        client: ServiceClient,
        drop: tuple[str, ...] = (),
        duplicate: tuple[str, ...] = (),
        delay: dict[str, float] | None = None,
    ) -> None:
        self.client = client
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay or {}
        self.faults: Counter[str] = Counter()
        self.responses: list[tuple[str, int]] = []  # (path, status) log

    def request(self, method: str, path: str, body=None):
        for frag in self.drop:
            if frag in path:
                self.faults[f"drop:{frag}"] += 1
                raise ServiceError(f"injected transport fault for {method} {path}")
        for frag, secs in self.delay.items():
            if frag in path:
                self.faults[f"delay:{frag}"] += 1
                time.sleep(secs)
        for frag in self.duplicate:
            if frag in path:
                self.faults[f"duplicate:{frag}"] += 1
                self.client.request(method, path, body)  # first copy
                status, payload, headers = self.client.request(method, path, body)
                self.responses.append((path, status))
                return status, payload, headers
        status, payload, headers = self.client.request(method, path, body)
        self.responses.append((path, status))
        return status, payload, headers


def _run_worker_thread(cfg: WorkerConfig, transport) -> tuple[Worker, threading.Thread]:
    worker = Worker(cfg, transport=transport)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _wait_metric(client: ServiceClient, path: tuple[str, ...], minimum: int, timeout: float = 30.0) -> dict:
    """Poll /metrics until a nested counter reaches ``minimum``."""
    deadline = time.monotonic() + timeout
    while True:
        m = client.metrics()
        value = m
        for key in path:
            value = value[key]
        if value >= minimum:
            return m
        if time.monotonic() >= deadline:
            raise AssertionError(f"metric {'/'.join(path)} never reached {minimum}: {m}")
        time.sleep(0.05)


def _assert_exactly_once(server: LiveServer, specs: list[dict]) -> None:
    """Every unique spec is done with one consistent result, none failed."""
    m = server.client.metrics()
    assert m["jobs"]["failed"] == 0, m
    assert m["workers"]["dead_letter"] == 0, m
    throughputs: dict[str, set[float]] = {}
    for spec in specs:
        job = server.client.submit(spec)  # terminal now: served from cache/store
        assert job["state"] == "done", job
        res = server.client.result(job["id"])["result"]
        throughputs.setdefault(job["key"], set()).add(res["throughput"])
    assert len(throughputs) == len(specs)
    for values in throughputs.values():
        assert len(values) == 1


class TestWorkerSigkill:
    def test_sigkill_mid_lease_requeues_and_completes(self, tmp_path):
        """Kill -9 a worker subprocess holding a lease: the lease expires,
        its jobs are redelivered, and the sweep completes exactly once."""
        srv = LiveServer(tmp_path, lease_ttl=1, worker_grace=2)
        worker_proc = None
        try:
            worker_proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "worker",
                    "--server", f"http://127.0.0.1:{srv.port}",
                    "--capacity", "4",
                    "--trace-cache", str(tmp_path / "worker-traces"),
                ],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            # Register the worker *before* submitting, so the daemon defers
            # to the fleet instead of racing it for the first batch.
            _wait_metric(srv.client, ("workers", "active"), 1)
            specs = _specs(4)
            jobs = [srv.client.submit(sp) for sp in specs]
            # Wait until the worker holds a lease, then kill it mid-batch.
            _wait_metric(srv.client, ("workers", "leased"), 1)
            worker_proc.send_signal(signal.SIGKILL)
            worker_proc.wait(timeout=10)

            # The dead worker's lease expires (ttl=1s); after worker_grace
            # the daemon falls back to local execution and finishes the job.
            for job in jobs:
                record = srv.client.wait(job["id"], timeout=120.0)
                assert record["state"] == "done"
                assert record["result"]["throughput"] > 0

            m = srv.client.metrics()
            assert m["workers"]["lease_expired"] >= 1, m
            assert m["workers"]["redelivered"] >= 1, m
            assert m["jobs"]["completed"] == len(specs), m
            _assert_exactly_once(srv, specs)
        finally:
            if worker_proc is not None and worker_proc.poll() is None:
                worker_proc.kill()
                worker_proc.communicate(timeout=10)
            srv.kill()


class TestHeartbeatLoss:
    def test_dropped_heartbeats_expire_lease_and_requeue(self, tmp_path):
        """Heartbeats all dropped + upload delayed past the deadline: the
        server expires the lease and redelivers; the late upload meets 410
        and its batch is discarded, so nothing completes twice."""
        srv = LiveServer(tmp_path, lease_ttl=1, worker_grace=2)
        try:
            transport = FlakyTransport(
                ServiceClient("127.0.0.1", srv.port, timeout=30.0),
                drop=("/heartbeat",),
                delay={"/result": 2.5},  # > lease_ttl: expiry wins the race
            )
            cfg = WorkerConfig(
                host="127.0.0.1", port=srv.port, worker_id="flaky",
                capacity=4, max_leases=1, poll_interval=0.1, quiet=True,
                trace_cache_dir=str(tmp_path / "worker-traces"),
            )
            worker, thread = _run_worker_thread(cfg, transport)
            _wait_metric(srv.client, ("workers", "active"), 1)
            specs = _specs(2)
            jobs = [srv.client.submit(sp) for sp in specs]
            thread.join(timeout=120)
            assert not thread.is_alive()

            # The worker saw its heartbeats fail and its upload refused.
            assert transport.faults["drop:/heartbeat"] >= 1
            assert worker.stats["uploads_gone"] == 1, worker.stats

            # Server side: lease expired, jobs redelivered, then completed
            # locally (the worker exited, so the grace window lapses).
            for job in jobs:
                record = srv.client.wait(job["id"], timeout=120.0)
                assert record["state"] == "done"
            m = srv.client.metrics()
            assert m["workers"]["lease_expired"] >= 1, m
            assert m["workers"]["redelivered"] >= len(specs), m
            assert m["workers"]["worker_results"] == 0, m  # 410 never recorded
            assert m["jobs"]["completed"] == len(specs), m
            _assert_exactly_once(srv, specs)
        finally:
            srv.kill()


class TestDuplicateUpload:
    def test_duplicate_result_upload_counts_once(self, tmp_path):
        """The upload is transmitted twice: the first copy consumes the
        lease, the retransmission answers 410, and every completion
        counter moves exactly once."""
        srv = LiveServer(tmp_path, lease_ttl=10, dispatch_delay=30)
        try:
            specs = _specs(3)
            jobs = [srv.client.submit(sp) for sp in specs]  # dispatcher stalled
            transport = FlakyTransport(
                ServiceClient("127.0.0.1", srv.port, timeout=30.0),
                duplicate=("/result",),
            )
            cfg = WorkerConfig(
                host="127.0.0.1", port=srv.port, worker_id="dup",
                capacity=4, max_leases=1, quiet=True,
                trace_cache_dir=str(tmp_path / "worker-traces"),
            )
            worker, thread = _run_worker_thread(cfg, transport)
            thread.join(timeout=120)
            assert not thread.is_alive()

            assert transport.faults["duplicate:/result"] == 1
            # The worker observed the duplicate's 410 (second response wins).
            assert worker.stats["uploads_gone"] == 1, worker.stats

            for job in jobs:
                record = srv.client.wait(job["id"], timeout=60.0)
                assert record["state"] == "done"
                assert record["source"] == "worker"
            m = srv.client.metrics()
            assert m["jobs"]["completed"] == len(specs), m
            assert m["workers"]["worker_results"] == len(specs), m
            assert m["workers"]["redelivered"] == 0, m
            assert m["by_source"]["worker"] == len(specs), m
            _assert_exactly_once(srv, specs)
        finally:
            srv.kill()


class TestDeadLetter:
    def test_silent_worker_dead_letters_after_redelivery_cap(self, tmp_path):
        """A worker that leases and vanishes, twice: with max_redeliveries=1
        the second expiry parks the job terminally in dead_letter."""
        srv = LiveServer(tmp_path, lease_ttl=0.4, max_redeliveries=1)
        stop = threading.Event()

        def silent_worker():
            # Lease everything offered, never heartbeat, never upload — and
            # keep polling so the daemon sees an "active" fleet and leaves
            # the queue alone (no local-fallback rescue).
            client = ServiceClient("127.0.0.1", srv.port, timeout=10.0)
            while not stop.is_set():
                try:
                    client.request(
                        "POST", "/v1/leases", {"worker": "ghost", "capacity": 4}
                    )
                except ServiceError:
                    pass
                stop.wait(0.15)

        thread = threading.Thread(target=silent_worker, daemon=True)
        try:
            thread.start()
            _wait_metric(srv.client, ("workers", "active"), 1)
            spec = _specs(1)[0]
            job = srv.client.submit(spec)

            m = _wait_metric(srv.client, ("workers", "dead_letter"), 1, timeout=30.0)
            assert m["workers"]["lease_expired"] >= 2, m
            assert m["jobs"]["completed"] == 0, m

            st = srv.client.status(job["id"])
            assert st["state"] == "dead_letter"
            assert st["redelivered"] == 2
            assert "dead-lettered" in st["error"]
            with pytest.raises(ServiceError, match="dead_letter"):
                srv.client.wait(job["id"], timeout=5.0)
        finally:
            stop.set()
            thread.join(timeout=5)
            srv.kill()


#: The preemption scenario's job: long enough (~3-4s of checkpointing
#: execution at interval 64) that the kill lands well after the midpoint
#: checkpoint and well before completion.
PREEMPT_SPEC = {
    "workload": "2-MEM",
    "policy": "dwarn",
    "seed": 4242,
    "warmup_cycles": 200,
    "measure_cycles": 30_000,
    "trace_length": 90_000,
}
PREEMPT_TOTAL = PREEMPT_SPEC["warmup_cycles"] + PREEMPT_SPEC["measure_cycles"]
CHECKPOINT_INTERVAL = 64


def _reference_payload(spec: dict) -> dict:
    """The uninterrupted in-process result the preempted job must match."""
    from repro.config import SimulationConfig, baseline
    from repro.core import Simulator, make_policy
    from repro.service.protocol import result_payload
    from repro.workloads import build_programs, get_workload

    simcfg = SimulationConfig(
        warmup_cycles=spec["warmup_cycles"],
        measure_cycles=spec["measure_cycles"],
        trace_length=spec["trace_length"],
        seed=spec["seed"],
    )
    programs = build_programs(get_workload(spec["workload"]), simcfg)
    sim = Simulator(baseline(), programs, make_policy(spec["policy"]), simcfg)
    return result_payload(sim.run())


def _checkpointing_worker_proc(port: int, trace_cache: str, name: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--server", f"http://127.0.0.1:{port}",
            "--capacity", "1",
            "--checkpoint-interval", str(CHECKPOINT_INTERVAL),
            "--worker-id", name,
            "--trace-cache", trace_cache,
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _assert_preempted_resume(client: ServiceClient, job: dict) -> dict:
    """The shared acceptance block: the job finished via a worker, resumed
    from at least the midpoint, and matches the uninterrupted reference."""
    record = client.wait(job["id"], timeout=180.0)
    assert record["state"] == "done"
    assert record["source"] == "worker"
    st = client.status(job["id"])
    assert st["resumed_from"] >= PREEMPT_TOTAL // 2, st
    assert record["result"] == _reference_payload(PREEMPT_SPEC)
    m = client.metrics()
    assert m["checkpoints"]["stored"] >= 1, m
    assert m["checkpoints"]["shipped"] >= 1, m
    assert m["checkpoints"]["resumed"] >= 1, m
    assert m["jobs"]["completed"] == 1, m
    return m


class TestPreemptResume:
    def test_sigkill_after_checkpoints_resumes_on_second_worker(self, tmp_path):
        """The headline preemption scenario: worker A checkpoints past 50%,
        is SIGKILLed, and worker B finishes the job from the shipped
        checkpoint — exactly once, bit-identical to never being killed."""
        srv = LiveServer(tmp_path, lease_ttl=1, worker_grace=60)
        worker_a = None
        heir = None
        try:
            worker_a = _checkpointing_worker_proc(
                srv.port, str(tmp_path / "shared-traces"), "prey"
            )
            _wait_metric(srv.client, ("workers", "active"), 1)
            job = srv.client.submit(PREEMPT_SPEC)
            # Let worker A checkpoint past the midpoint...
            _wait_metric(
                srv.client, ("checkpoints", "last_cycle"), PREEMPT_TOTAL // 2,
                timeout=90.0,
            )
            # ...boot the heir first (so the daemon keeps deferring to the
            # fleet instead of rescuing the job locally from cycle 0)...
            cfg = WorkerConfig(
                host="127.0.0.1", port=srv.port, worker_id="heir",
                capacity=1, poll_interval=0.1, quiet=True,
                checkpoint_interval=CHECKPOINT_INTERVAL,
                trace_cache_dir=str(tmp_path / "shared-traces"),
            )
            heir, thread = _run_worker_thread(
                cfg, ServiceClient("127.0.0.1", srv.port, timeout=30.0)
            )
            # ...then kill -9 the holder mid-run.
            worker_a.send_signal(signal.SIGKILL)
            worker_a.wait(timeout=10)

            m = _assert_preempted_resume(srv.client, job)
            assert m["workers"]["lease_expired"] >= 1, m
            assert m["workers"]["redelivered"] >= 1, m
            assert heir.stats["resumes"] == 1, heir.stats
            assert heir.stats["resumes_rejected"] == 0, heir.stats
            assert heir.stats["checkpoints_uploaded"] >= 1, heir.stats
            _assert_exactly_once(srv, [PREEMPT_SPEC])
        finally:
            if heir is not None:
                heir.stop()
            if worker_a is not None and worker_a.poll() is None:
                worker_a.kill()
                worker_a.communicate(timeout=10)
            srv.kill()


class TestPreemptResumeRouted:
    def test_preempted_job_resumes_through_router(self, tmp_path):
        """Same preemption story through ``dwarn-sim route``: the checkpoint
        PUT forwards to the owning shard, the redelivered (shard-prefixed)
        lease ships it back, and the resumed completion flows through the
        router's aggregated metrics."""
        from test_service_router import _wait_port_file

        rpf = tmp_path / "router-port"
        router = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "route",
                "--port", "0", "--port-file", str(rpf),
                "--shards", "2",
                "--state-dir", str(tmp_path / "router-state"),
                "--lease-ttl", "1",
                "--cooldown", "0.5",
            ],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        worker_a = None
        heir = None
        try:
            port = _wait_port_file(rpf, router)
            client = ServiceClient("127.0.0.1", port, timeout=30.0)
            worker_a = _checkpointing_worker_proc(
                port, str(tmp_path / "shared-traces"), "prey"
            )
            _wait_metric(client, ("workers", "active"), 1)
            job = client.submit(PREEMPT_SPEC)
            assert "@" in job["id"]  # routed: the id names its shard
            _wait_metric(
                client, ("checkpoints", "last_cycle"), PREEMPT_TOTAL // 2,
                timeout=90.0,
            )
            cfg = WorkerConfig(
                host="127.0.0.1", port=port, worker_id="heir",
                capacity=1, poll_interval=0.1, quiet=True,
                checkpoint_interval=CHECKPOINT_INTERVAL,
                trace_cache_dir=str(tmp_path / "shared-traces"),
            )
            heir, thread = _run_worker_thread(
                cfg, ServiceClient("127.0.0.1", port, timeout=30.0)
            )
            worker_a.send_signal(signal.SIGKILL)
            worker_a.wait(timeout=10)

            _assert_preempted_resume(client, job)
            assert heir.stats["resumes"] == 1, heir.stats
        finally:
            if heir is not None:
                heir.stop()
            if worker_a is not None and worker_a.poll() is None:
                worker_a.kill()
                worker_a.communicate(timeout=10)
            # SIGTERM, not SIGKILL: the router must tear down the shard
            # daemons it supervises.
            if router.poll() is None:
                router.terminate()
                try:
                    router.communicate(timeout=30)
                except subprocess.TimeoutExpired:
                    router.kill()
                    router.communicate(timeout=10)


class TestTwoWorkerSweep:
    def test_two_workers_mixed_sweep_exactly_once(self, tmp_path):
        """Two concurrent workers drain one mixed sweep: every job is
        completed by the fleet (not the local dispatcher), none twice."""
        srv = LiveServer(tmp_path, lease_ttl=10)
        workers: list[tuple[Worker, threading.Thread]] = []
        try:
            for name in ("w1", "w2"):
                cfg = WorkerConfig(
                    host="127.0.0.1", port=srv.port, worker_id=name,
                    capacity=2, poll_interval=0.1, quiet=True,
                    trace_cache_dir=str(tmp_path / f"traces-{name}"),
                )
                workers.append(
                    _run_worker_thread(
                        cfg, ServiceClient("127.0.0.1", srv.port, timeout=30.0)
                    )
                )
            _wait_metric(srv.client, ("workers", "active"), 2)
            specs = _specs(8)
            jobs = [srv.client.submit(sp) for sp in specs]
            for job in jobs:
                record = srv.client.wait(job["id"], timeout=180.0)
                assert record["state"] == "done"
                assert record["source"] == "worker"

            m = srv.client.metrics()
            assert m["jobs"]["completed"] == len(specs), m
            assert m["workers"]["worker_results"] == len(specs), m
            assert m["by_source"]["worker"] == len(specs), m
            assert m["workers"]["dead_letter"] == 0, m
            # Both workers contributed (capacity 2 over 8 jobs: neither
            # could have taken the whole sweep before the other leased).
            done_per_worker = [w.stats["jobs_done"] for w, _ in workers]
            assert sum(done_per_worker) == len(specs)
            _assert_exactly_once(srv, specs)
        finally:
            for worker, thread in workers:
                worker.stop()
            for worker, thread in workers:
                thread.join(timeout=10)
            srv.kill()
