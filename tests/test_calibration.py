"""Tests for the calibration tooling (cache-only replay + fixed-point step)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.trace import generate_trace, get_profile
from repro.trace.calibration import (
    ReplayResult,
    calibrate_profile,
    calibration_report,
    replay_miss_rates,
)


class TestReplay:
    def test_mcf_replay_near_targets(self):
        trace = generate_trace(get_profile("mcf"), 30_000, base=1 << 30, seed=5)
        res = replay_miss_rates(trace)
        assert res.loads > 5000
        assert 0.25 <= res.l1_missrate <= 0.42
        assert 0.22 <= res.l2_missrate <= 0.40
        assert res.l1_to_l2_ratio > 0.8

    def test_gzip_replay_low_l2(self):
        trace = generate_trace(get_profile("gzip"), 30_000, base=2 << 30, seed=5)
        res = replay_miss_rates(trace)
        assert res.l1_missrate == pytest.approx(0.025, abs=0.012)
        assert res.l2_missrate < 0.005

    def test_prewarm_reduces_first_touch(self):
        trace = generate_trace(get_profile("twolf"), 20_000, base=3 << 30, seed=5)
        warm = replay_miss_rates(trace, prewarm=True, warmup_fraction=0.0)
        cold = replay_miss_rates(trace, prewarm=False, warmup_fraction=0.0)
        assert warm.l2_missrate <= cold.l2_missrate

    def test_empty_loads_handled(self):
        res = ReplayResult(0, 0.0, 0.0)
        assert res.l1_to_l2_ratio == 0.0


class TestCalibrationStep:
    def test_step_moves_toward_target(self):
        # Perturb a profile: declare targets far from what the tiers deliver;
        # the correction step must push the nominal rates the right way.
        base = get_profile("twolf")
        skewed = dataclasses.replace(base, l1_missrate=0.10, l2_missrate=0.05)
        adjusted, measured = calibrate_profile(skewed, length=20_000)
        # Measured should be near the nominal (tiers are analytic)...
        assert measured.l1_missrate == pytest.approx(0.10, abs=0.04)
        # ...so the adjustment stays small and inside valid space.
        assert 0.0 <= adjusted.l2_missrate <= adjusted.l1_missrate <= 0.99

    def test_adjusted_profile_still_valid(self):
        adjusted, _ = calibrate_profile(get_profile("vpr"), length=15_000)
        # Construction re-runs __post_init__ validation; reaching here is the
        # assertion, plus basic sanity:
        assert adjusted.name == "vpr"
        assert adjusted.p_cold >= 0.0


class TestReport:
    def test_rows_shape(self):
        profiles = {n: get_profile(n) for n in ("gzip", "mcf")}
        rows = calibration_report(profiles, length=10_000)
        assert len(rows) == 2
        for row in rows:
            assert len(row) == 5
            name, l1_t, l1_m, l2_t, l2_m = row
            assert name in profiles
            assert l1_m >= 0 and l2_m >= 0
