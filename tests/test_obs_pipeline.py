"""Pipeline event tracer: event kinds, ring-buffer bounds, execution-path
selection (hook-only tracing keeps the fused loop) and behavior parity."""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.obs import EVENT_KINDS, PipelineTracer
from repro.workloads import build_programs, get_workload

CFG = SimulationConfig(warmup_cycles=200, measure_cycles=1500, trace_length=6000, seed=777)


def make_sim(workload="2-MIX", policy="dwarn"):
    programs = build_programs(get_workload(workload), CFG)
    return Simulator(baseline(), programs, make_policy(policy), CFG)


def run_traced(workload="2-MIX", policy="dwarn", **tracer_kw):
    sim = make_sim(workload, policy)
    tracer = PipelineTracer(**tracer_kw)
    tracer.attach(sim)
    res = sim.run()
    return tracer, res


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            PipelineTracer(capacity=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kinds"):
            PipelineTracer(kinds=("l1_miss", "teleport"))

    def test_single_use(self):
        tracer = PipelineTracer()
        tracer.attach(make_sim())
        with pytest.raises(RuntimeError, match="single-use"):
            tracer.attach(make_sim())


class TestEventStream:
    def test_core_kinds_recorded(self):
        tracer, _ = run_traced(capacity=200_000)
        counts = tracer.counts()
        assert set(counts) <= set(EVENT_KINDS)
        for kind in ("fetch", "issue", "l1_miss", "fill"):
            assert counts.get(kind, 0) > 0, kind
        assert tracer.dropped == 0
        assert tracer.recorded == len(tracer.events)

    def test_records_carry_required_fields(self):
        tracer, _ = run_traced(capacity=50_000)
        for ev in tracer.events:
            assert ev["kind"] in EVENT_KINDS
            assert ev["cycle"] >= 0
            assert ev["tid"] in (0, 1)
            assert "pc" in ev
        fills = [ev for ev in tracer.events if ev["kind"] == "fill"]
        assert fills and all(ev["latency"] > 0 for ev in fills)

    def test_cycles_nondecreasing(self):
        tracer, _ = run_traced(capacity=200_000)
        cycles = [ev["cycle"] for ev in tracer.events]
        assert cycles == sorted(cycles)

    def test_ring_capacity_and_dropped(self):
        tracer, _ = run_traced(capacity=64)
        assert len(tracer.events) == 64
        assert tracer.recorded > 64
        assert tracer.dropped == tracer.recorded - 64
        # Newest events win: the ring holds the tail of the run.
        assert tracer.events[-1]["cycle"] >= 1600

    def test_kind_filter(self):
        tracer, _ = run_traced(kinds=("l1_miss", "fill"), capacity=50_000)
        assert set(tracer.counts()) <= {"l1_miss", "fill"}
        assert tracer.recorded > 0

    def test_flush_events_under_flush_policy(self):
        tracer, res = run_traced("2-MEM", "flush", kinds=("flush",), capacity=50_000)
        events = list(tracer.events)
        assert events, "FLUSH on 2-MEM must flush at this config"
        assert all(ev["kind"] == "flush" for ev in events)
        assert all(ev["squashed"] >= 0 for ev in events)

    def test_gate_events_under_stall_policy(self):
        tracer, _ = run_traced("2-MEM", "stall", kinds=("gate",), capacity=50_000)
        events = list(tracer.events)
        assert events, "STALL on 2-MEM must gate at this config"
        assert all(ev["until"] > ev["cycle"] for ev in events)

    def test_tail(self):
        tracer, _ = run_traced(capacity=1000)
        assert tracer.tail(0) == []
        tail = tracer.tail(5)
        assert tail == list(tracer.events)[-5:]

    def test_to_jsonl(self, tmp_path):
        tracer, _ = run_traced(kinds=("l1_miss",), capacity=5000)
        path = tracer.to_jsonl(tmp_path / "ev.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.events)
        assert all(json.loads(line)["kind"] == "l1_miss" for line in lines)


class TestExecutionPathSelection:
    def test_hook_only_tracing_keeps_fused_loop(self):
        sim = make_sim()
        PipelineTracer(kinds=("l1_miss", "l2_miss", "fill", "gate", "flush")).attach(sim)
        assert sim._fast_eligible()

    def test_per_instruction_kinds_force_staged_path(self):
        for kind in ("fetch", "issue"):
            sim = make_sim()
            PipelineTracer(kinds=(kind,)).attach(sim)
            assert not sim._fast_eligible()


class TestParity:
    @pytest.mark.parametrize("policy", ("dwarn", "flush"))
    def test_traced_run_commits_exactly_what_untraced_does(self, policy):
        plain = make_sim("2-MEM", policy).run()
        _, traced = run_traced("2-MEM", policy, capacity=4096)
        assert traced.cycles == plain.cycles
        assert traced.committed == plain.committed
        assert traced.fetched == plain.fetched

    def test_hook_only_parity_on_fused_path(self):
        plain = make_sim("2-MIX", "dwarn").run()
        _, traced = run_traced("2-MIX", "dwarn", kinds=("l1_miss", "fill"), capacity=4096)
        assert traced.committed == plain.committed
        assert traced.fetched == plain.fetched
