"""Golden regression pins: exact results for two tiny reference simulations.

The simulator is deterministic pure Python, so these values are identical on
every platform. If a change breaks them *intentionally* (model improvement,
substrate retuning), update the numbers AND bump
``repro.experiments.runner.CACHE_VERSION`` so persisted experiment caches
cannot serve stale results; if it breaks them unintentionally, that is the
bug these pins exist to catch.
"""

from __future__ import annotations

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.workloads import build_programs, get_workload

CFG = SimulationConfig(warmup_cycles=200, measure_cycles=1500, trace_length=6000, seed=777)


def run(workload: str, policy: str):
    programs = build_programs(get_workload(workload), CFG)
    return Simulator(baseline(), programs, make_policy(policy), CFG).run()


def test_golden_values_unchanged():
    a = run("2-MIX", "icount")
    b = run("2-MEM", "flush")
    got = {
        "2-MIX/icount/committed": tuple(a.committed),
        "2-MIX/icount/fetched": tuple(a.fetched),
        "2-MEM/flush/committed": tuple(b.committed),
        "2-MEM/flush/flushed": tuple(b.squashed_flush),
    }
    expected = {
        "2-MIX/icount/committed": (1255, 1653),
        "2-MIX/icount/fetched": (2595, 2124),
        "2-MEM/flush/committed": (225, 856),
        "2-MEM/flush/flushed": (651, 377),
    }
    assert got == expected, (
        "golden values drifted — intentional model change? Update the pins "
        f"and bump CACHE_VERSION. Got: {got}"
    )
