"""Tests for fairness metrics and table formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.result import SimResult
from repro.metrics import (
    FairnessReport,
    format_pct,
    format_table,
    hmean_relative,
    relative_ipcs,
    weighted_speedup,
)


def make_result(ipc, benchmarks=None) -> SimResult:
    n = len(ipc)
    benchmarks = tuple(benchmarks or [f"b{i}" for i in range(n)])
    return SimResult(
        machine="baseline",
        policy="icount",
        benchmarks=benchmarks,
        seed=1,
        cycles=1000,
        ipc=list(ipc),
        committed=[int(x * 1000) for x in ipc],
        fetched=[int(x * 1200) for x in ipc],
        squashed_mispredict=[0] * n,
        squashed_flush=[0] * n,
        flush_events=[0] * n,
        mispredicts=[0] * n,
        branches_resolved=[1] * n,
        loads=[100] * n,
        load_l1_misses=[10] * n,
        load_l2_misses=[5] * n,
    )


class TestRelativeIPCs:
    def test_with_mapping(self):
        res = make_result([1.0, 0.5], ["gzip", "mcf"])
        rel = relative_ipcs(res, {"gzip": 2.0, "mcf": 0.5})
        assert rel == [0.5, 1.0]

    def test_with_sequence(self):
        res = make_result([1.0, 0.5])
        assert relative_ipcs(res, [2.0, 1.0]) == [0.5, 0.5]

    def test_replicated_benchmarks_share_reference(self):
        res = make_result([0.4, 0.2], ["mcf", "mcf"])
        rel = relative_ipcs(res, {"mcf": 0.4})
        assert rel == [1.0, 0.5]

    def test_zero_reference_rejected(self):
        res = make_result([1.0], ["gzip"])
        with pytest.raises(ValueError):
            relative_ipcs(res, {"gzip": 0.0})


class TestHmeanAndWspeedup:
    def test_hmean(self):
        res = make_result([1.0, 1.0], ["a", "b"])
        assert hmean_relative(res, {"a": 1.0, "b": 3.0}) == pytest.approx(0.5)

    def test_weighted_speedup(self):
        res = make_result([1.0, 1.0], ["a", "b"])
        assert weighted_speedup(res, {"a": 1.0, "b": 2.0}) == pytest.approx(0.75)

    @given(st.lists(st.floats(min_value=0.05, max_value=4.0), min_size=2, max_size=8))
    def test_property_hmean_le_wspeedup(self, ipcs):
        res = make_result(ipcs)
        alone = [2.0] * len(ipcs)
        assert hmean_relative(res, alone) <= weighted_speedup(res, alone) + 1e-9


class TestFairnessReport:
    def test_from_result(self):
        res = make_result([1.0, 0.5], ["gzip", "mcf"])
        rep = FairnessReport.from_result(res, {"gzip": 2.0, "mcf": 0.5})
        assert rep.policy == "icount"
        assert rep.relative == [0.5, 1.0]
        assert rep.throughput == pytest.approx(1.5)
        assert rep.hmean == pytest.approx(2 / (1 / 0.5 + 1 / 1.0))
        assert rep.wspeedup == pytest.approx(0.75)


class TestFormatting:
    def test_format_pct(self):
        assert format_pct(12.34) == "+12.3%"
        assert format_pct(-3.21) == "-3.2%"
        assert format_pct(12.34, signed=False) == "12.3%"

    def test_format_table_plain(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out

    def test_format_table_markdown(self):
        out = format_table(["a"], [[1]], markdown=True)
        assert out.splitlines()[0].startswith("| a")
        assert "|---" in out.splitlines()[1].replace(" ", "")

    def test_column_alignment(self):
        out = format_table(["col"], [["averylongcell"], ["s"]])
        lines = out.splitlines()
        assert len(lines[1]) >= len("averylongcell")
