"""Property tests: the fused fast loop is cycle-for-cycle identical to the
staged reference path.

``Simulator.run_cycles`` dispatches to ``_run_fast`` — every pipeline stage
inlined into one frame — unless a stage method is overridden, in which case
it falls back to calling ``_step`` per cycle. The fast loop is pure
optimization: for any workload, policy and seed, both paths must produce
exactly the same ``SimResult``. Pinning an instance attribute for any
``_FAST_STAGES`` method (here ``_step`` itself) is the supported way to
force the reference path (see ``Simulator._fast_eligible``).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.config import SimulationConfig, baseline  # noqa: E402
from repro.core import Simulator, make_policy  # noqa: E402
from repro.workloads import build_programs, get_workload  # noqa: E402

#: The paper's six-policy comparison — each exercises different hook paths
#: (gating, flush/squash, predictive pmeta protocol) through the fast loop.
SIX_POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")


def run_one(workload: str, policy: str, seed: int, cycles: int, fused: bool):
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=cycles, trace_length=3_000, seed=seed
    )
    programs = build_programs(get_workload(workload), simcfg)
    sim = Simulator(baseline(), programs, make_policy(policy), simcfg)
    if not fused:
        # Instance-pinning a stage method makes _fast_eligible() False, so
        # run_cycles takes the staged per-cycle path.
        sim._step = sim._step
        assert not sim._fast_eligible()
    else:
        assert sim._fast_eligible()
    sim.run_cycles(cycles)
    sim.validate_state()
    return sim


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(["2-ILP", "2-MEM", "2-MIX", "4-MIX", "4-MEM"]),
    policy=st.sampled_from(SIX_POLICIES),
    seed=st.integers(min_value=0, max_value=2**20),
    cycles=st.integers(min_value=50, max_value=400),
)
def test_fused_loop_matches_staged_reference(workload, policy, seed, cycles):
    fast = run_one(workload, policy, seed, cycles, fused=True)
    ref = run_one(workload, policy, seed, cycles, fused=False)
    # Full windowed statistics — IPC, committed/fetched/squashed counts,
    # mispredicts, load/miss counters — must be identical, not just close.
    assert fast.result() == ref.result()
    # And the raw cumulative stats underneath them.
    assert fast.cycle == ref.cycle
    assert list(fast.stats.committed) == list(ref.stats.committed)
    assert list(fast.stats.fetched) == list(ref.stats.fetched)
    assert list(fast.stats.mispredicts) == list(ref.stats.mispredicts)
    assert fast.stats.dispatched == ref.stats.dispatched


@pytest.mark.parametrize("policy", SIX_POLICIES)
def test_fused_loop_matches_staged_reference_smoke(policy):
    """Deterministic non-hypothesis anchor: one fixed point per policy, so
    a parity break is caught even where hypothesis is unavailable."""
    fast = run_one("4-MIX", policy, 12345, 500, fused=True)
    ref = run_one("4-MIX", policy, 12345, 500, fused=False)
    assert fast.result() == ref.result()
