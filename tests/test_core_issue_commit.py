"""Back-end mechanics: issue-width/FU limits, commit width, load timing paths."""

from __future__ import annotations


from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.isa.opcodes import OpClass
from repro.workloads import build_programs, build_single, get_workload

CFG = SimulationConfig(warmup_cycles=0, measure_cycles=2500, trace_length=9000, seed=23)


def fresh(workload="2-ILP", policy="icount", machine=None, simcfg=CFG):
    programs = (
        build_programs(get_workload(workload), simcfg)
        if "-" in workload
        else build_single(workload, simcfg)
    )
    return Simulator(machine or baseline(), programs, make_policy(policy), simcfg)


class TestIssueLimits:
    def test_issue_width_respected(self):
        sim = fresh("4-ILP")
        prev = 0
        for _ in range(400):
            sim.run_cycles(1)
            issued = sim.stats.issued - prev
            prev = sim.stats.issued
            assert issued <= sim.machine.proc.issue_width

    def test_fu_class_limits(self):
        """Per-cycle issues per class never exceed the FU count."""
        sim = fresh("4-MIX")
        from repro.isa.opcodes import QUEUE_OF

        per_class = [0, 0, 0]
        orig = sim._execute_load

        # Count by wrapping the ready-heap pops: simplest reliable probe is
        # the issue_cycle stamps after the fact.
        sim.run_cycles(1500)
        by_cycle: dict[tuple[int, int], int] = {}
        for tc in sim.threads:
            for i in tc.rob:
                if i.issued:
                    key = (i.issue_cycle, QUEUE_OF[i.op])
                    by_cycle[key] = by_cycle.get(key, 0) + 1
        units = sim._units
        for (cyc, q), count in by_cycle.items():
            assert count <= units[q], f"cycle {cyc} class {q}: {count} > {units[q]}"

    def test_issue_is_oldest_first_within_class(self):
        sim = fresh("2-ILP")
        sim.run_cycles(800)
        # For each thread, issued instructions' issue order must respect
        # dataflow, and among simultaneously-ready instrs, age order. Proxy
        # check: an issued instr's producers issued no later than it.
        for tc in sim.threads:
            for i in tc.rob:
                if not i.issued:
                    continue
                # dependencies resolved before issue
                if i.dispatch_cycle >= 0:
                    assert i.issue_cycle >= i.dispatch_cycle + 1


class TestCommit:
    def test_commit_width_respected(self):
        sim = fresh("4-ILP")
        prev = [0] * 4
        for _ in range(400):
            sim.run_cycles(1)
            total = sum(sim.stats.committed) - sum(prev)
            prev = list(sim.stats.committed)
            assert total <= sim.machine.proc.commit_width

    def test_commit_is_in_order_per_thread(self):
        """Committed count can never exceed the oldest uncommitted seq."""
        sim = fresh("2-ILP")
        sim.run_cycles(1000)
        for tc in sim.threads:
            if tc.rob:
                # Everything older than the ROB head has committed (correct
                # path) or was squashed; committed instructions are a prefix
                # of the architectural stream, whose length is tc.committed.
                assert tc.rob[0].idx >= tc.committed

    def test_rotating_commit_start_is_fair(self):
        sim = fresh("8-ILP")
        sim.run_cycles(3000)
        committed = sim.stats.committed
        assert min(committed) > 0
        # Loose bound at this tiny scale (threads warm up at different
        # speeds); systematic starvation would blow way past this.
        assert max(committed) < 50 * max(1, min(committed))


class TestLoadTimingInPipeline:
    def test_l2_missing_load_takes_memory_latency(self):
        sim = fresh("mcf", simcfg=CFG)
        sim.run_cycles(2500)
        # Find committed L2-missing loads and check their lifetime.
        long_loads = 0
        for tc in sim.threads:
            for i in tc.rob:
                if i.op == OpClass.LOAD and i.l2_miss and i.completed:
                    dur = i.complete_cycle - i.issue_cycle
                    assert dur >= sim.machine.mem.l2_miss_latency - 1
                    long_loads += 1
        # mcf misses constantly; the window should contain some in-ROB.
        # (not asserting >0 strictly: commit may have drained them)

    def test_tlb_miss_charged(self):
        sim = fresh("mcf", simcfg=CFG)
        sim.run_cycles(2500)
        assert sim.hierarchy.tlb_misses[0] > 0

    def test_bank_conflicts_occur_under_load(self):
        sim = fresh("8-ILP")
        sim.run_cycles(2500)
        assert sim.hierarchy.dcache.bank_conflicts >= 0  # counter wired up


class TestGatingMixinRules:
    def test_keep_one_running(self):
        sim = fresh("2-MEM", "stall")
        pol = sim.policy
        # Gate thread 0 artificially; gating thread 1 must then be refused.
        pol._gate_count[0] = 1
        assert not pol.can_gate(1)
        assert pol.can_gate(0)  # 1 is still running
        pol._gate_count[0] = 0

    def test_gate_until_fill_refuses_past_fills(self):
        from repro.isa.instruction import DynInstr

        sim = fresh("2-MEM", "stall")
        load = DynInstr(0, 1, 1, int(OpClass.LOAD), 0x100)
        load.fill_cycle = sim.cycle  # already (about to be) filled
        assert not sim.policy.gate_until_fill(load)

    def test_gate_ungates_at_advance_signal(self):
        from repro.isa.instruction import DynInstr

        sim = fresh("2-MEM", "stall")
        load = DynInstr(0, 1, 1, int(OpClass.LOAD), 0x100)
        load.fill_cycle = sim.cycle + 50
        assert sim.policy.gate_until_fill(load)
        assert sim.policy.is_gated(0)
        sim.run_cycles(50 - sim.machine.mem.fill_advance_cycles + 1)
        assert not sim.policy.is_gated(0)

    def test_gated_cycles_stat(self):
        from repro.isa.instruction import DynInstr

        sim = fresh("2-MEM", "stall")
        load = DynInstr(0, 1, 1, int(OpClass.LOAD), 0x100)
        load.fill_cycle = sim.cycle + 30
        before = sim.stats.gated_cycles[0]
        sim.policy.gate_until_fill(load)
        assert sim.stats.gated_cycles[0] == before + 30 - sim.machine.mem.fill_advance_cycles
