"""Client retry semantics, pinned against a scripted in-process HTTP server.

The regression under test is the wall-clock deadline: before it existed,
``retries``/``backpressure_retries`` were the only bound, so a server
advertising ``Retry-After: 10`` could park a 64-retry client for ten
minutes. A ``deadline`` is a *total elapsed* budget for one logical call —
it spans transport retries, backoff sleeps and backpressure waits, and the
call must surface an error promptly once the budget is spent, however many
attempts remain.

No simulations run here: the fake server answers scripted statuses, which
keeps the timing assertions tight enough to be meaningful.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import ServiceClient, ServiceError

SPEC = {"workload": "2-MIX", "policy": "dwarn"}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ScriptedServer:
    """Answers every POST with the next scripted (status, headers) entry,
    recording request headers; the last entry repeats forever."""

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802  (stdlib naming)
                outer.requests.append(dict(self.headers))
                index = min(len(outer.requests) - 1, len(outer.script) - 1)
                status, headers = outer.script[index]
                body = json.dumps({"error": "scripted", "retry_after": 1}).encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture
def always_429():
    srv = ScriptedServer([(429, {"Retry-After": "10"})])
    yield srv
    srv.close()


class TestTransportDeadline:
    def test_connection_refused_respects_deadline(self):
        """Many transport retries allowed, but the 0.5s budget wins."""
        client = ServiceClient(
            "127.0.0.1", _free_port(), timeout=1.0, retries=50,
            backoff=0.2, deadline=0.5, rng=random.Random(7),
        )
        t0 = time.monotonic()
        with pytest.raises(ServiceError) as exc:
            client.submit(SPEC)
        elapsed = time.monotonic() - t0
        assert "deadline exceeded" in str(exc.value)
        assert elapsed < 3.0  # 51 attempts x 0.2s backoff would be ~20s

    def test_no_deadline_keeps_attempt_bound(self):
        """deadline=None preserves the legacy attempts-only behaviour."""
        client = ServiceClient(
            "127.0.0.1", _free_port(), timeout=1.0, retries=2,
            backoff=0.01, rng=random.Random(7),
        )
        with pytest.raises(ServiceError) as exc:
            client.submit(SPEC)
        assert "failed after 3 attempts" in str(exc.value)


class TestBackpressureDeadline:
    def test_deadline_cuts_through_retry_after(self, always_429):
        """Retry-After: 10 with generous retries must still error within
        the 1s budget — the sleep is capped at the remaining budget."""
        client = ServiceClient(
            "127.0.0.1", always_429.port, timeout=5.0,
            backpressure_retries=1000, max_retry_after=5.0,
            deadline=1.0, rng=random.Random(7),
        )
        t0 = time.monotonic()
        with pytest.raises(ServiceError) as exc:
            client.submit(SPEC)
        elapsed = time.monotonic() - t0
        # The budget can expire in either layer — mid-backpressure-wait
        # (429 surfaces) or at the next transport attempt — but it must be
        # a deadline error either way, and fast.
        assert "deadline exceeded" in str(exc.value)
        assert 0.5 < elapsed < 3.0

    def test_per_call_deadline_overrides_instance_default(self, always_429):
        client = ServiceClient(
            "127.0.0.1", always_429.port, timeout=5.0,
            backpressure_retries=1000, deadline=None, rng=random.Random(7),
        )
        t0 = time.monotonic()
        with pytest.raises(ServiceError) as exc:
            client.submit(SPEC, deadline=0.5)
        assert time.monotonic() - t0 < 3.0
        assert "deadline exceeded" in str(exc.value)

    def test_zero_backpressure_retries_surface_immediately(self, always_429):
        client = ServiceClient("127.0.0.1", always_429.port, timeout=5.0)
        with pytest.raises(ServiceError) as exc:
            client.submit(SPEC)
        assert exc.value.status == 429
        assert len(always_429.requests) == 1  # no retry, no sleep

    def test_success_before_deadline_wins(self):
        srv = ScriptedServer([
            (429, {"Retry-After": "0.1"}),
            (202, {"Content-Type": "application/json"}),
        ])
        try:
            client = ServiceClient(
                "127.0.0.1", srv.port, timeout=5.0,
                backpressure_retries=5, deadline=10.0, rng=random.Random(7),
            )
            payload = client.submit(SPEC)
            assert payload == {"error": "scripted", "retry_after": 1}
            assert len(srv.requests) == 2
        finally:
            srv.close()


class TestClientIdHeader:
    def test_client_id_rides_every_request(self, always_429):
        client = ServiceClient(
            "127.0.0.1", always_429.port, timeout=5.0, client_id="sweeper-7"
        )
        with pytest.raises(ServiceError):
            client.submit(SPEC)
        assert always_429.requests[0].get("X-Client-Id") == "sweeper-7"

    def test_anonymous_when_unset(self, always_429):
        client = ServiceClient("127.0.0.1", always_429.port, timeout=5.0)
        with pytest.raises(ServiceError):
            client.submit(SPEC)
        assert "X-Client-Id" not in always_429.requests[0]
