"""Property test: the timed hierarchy agrees with a timing-free reference.

The reference model is two textbook LRU caches with no MSHRs and no timing:
after every outstanding fill has landed, the timed hierarchy's *presence*
behaviour (would this access hit L1 / L2?) must be identical to the
reference's, for any access sequence. This pins the subtle interactions —
reserve-at-probe, lazy outstanding cleanup, write-allocate stores — to the
simple semantics they are meant to implement.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config.memory import MemoryConfig
from repro.mem import MemoryHierarchy


class _RefCache:
    def __init__(self, sets: int, assoc: int) -> None:
        self.sets = [[] for _ in range(sets)]
        self.mask = sets - 1
        self.assoc = assoc

    def access(self, line: int) -> bool:
        s = self.sets[line & self.mask]
        hit = line in s
        if hit:
            s.remove(line)
        elif len(s) >= self.assoc:
            s.pop(0)
        s.append(line)
        return hit


class _RefHierarchy:
    """L1 + L2, both accessed on every reference, no timing."""

    def __init__(self, mem: MemoryConfig) -> None:
        self.l1 = _RefCache(mem.dcache.num_sets, mem.dcache.assoc)
        self.l2 = _RefCache(mem.l2.num_sets, mem.l2.assoc)

    def access(self, line: int) -> tuple[bool, bool]:
        l1_hit = self.l1.access(line)
        if l1_hit:
            return True, True
        l2_hit = self.l2.access(line)
        return False, l2_hit


# Lines drawn from a few sets so evictions actually happen.
LINE = st.integers(min_value=0, max_value=3 * 512 + 7)
ACCESS = st.tuples(st.booleans(), LINE)  # (is_store, line)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(ACCESS, min_size=1, max_size=150))
def test_hierarchy_matches_reference_when_fills_settle(accesses):
    mem = MemoryConfig()
    hier = MemoryHierarchy(mem, 1)
    ref = _RefHierarchy(mem)

    cycle = 0
    for is_store, line in accesses:
        addr = line << hier.line_shift
        expect_l1, expect_l2 = ref.access(line)
        if is_store:
            res = hier.store_access(0, addr, cycle)
        else:
            res = hier.load_access(0, addr, cycle)
        assert res.l1_miss == (not expect_l1), f"L1 divergence at line {line}"
        if res.l1_miss:
            assert res.l2_miss == (not expect_l2), f"L2 divergence at line {line}"
        # Let every fill land before the next access ("settled" regime): the
        # timed model's extra states (outstanding fills) must be invisible.
        cycle = res.fill_cycle + 1


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(LINE, min_size=2, max_size=80))
def test_merged_misses_share_primary_outcome(lines):
    """Back-to-back accesses (no settling): a secondary miss to an
    outstanding line must report the primary's L2 classification and the
    same fill cycle."""
    mem = MemoryConfig()
    hier = MemoryHierarchy(mem, 1)
    outstanding: dict[int, tuple[int, bool]] = {}
    cycle = 0
    for line in lines:
        addr = line << hier.line_shift
        res = hier.load_access(0, addr, cycle)
        if res.merged:
            fill, was_l2 = outstanding[line]
            assert res.fill_cycle == fill
            assert res.l2_miss == was_l2
        elif res.l1_miss:
            outstanding[line] = (res.fill_cycle, res.l2_miss)
        cycle += 1  # dense accesses: fills stay in flight
