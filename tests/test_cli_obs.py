"""CLI surface of the observability layer: trace-run (JSONL/CSV export,
event traces, reconciliation exit code), explain, and the trace-cache
directory resolution reported by cache stats."""

from __future__ import annotations

import json

from repro.cli import DEFAULT_TRACE_CACHE, TRACE_CACHE_ENV, main, resolve_trace_cache_dir
from repro.obs import validate_record

SIM_ARGS = ["--warmup", "200", "--cycles", "1500", "--trace-length", "6000", "--seed", "777"]


class TestTraceRun:
    def test_jsonl_schema_valid_and_reconciles(self, tmp_path, capsys):
        out = tmp_path / "iv.jsonl"
        rc = main([*SIM_ARGS, "trace-run", "2-MIX", "--policy", "dwarn", "-o", str(out)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            assert validate_record(json.loads(line), num_threads=2) == []
        printed = capsys.readouterr().out
        assert "reconciliation OK" in printed
        assert f"wrote {len(lines)} intervals" in printed

    def test_csv_format_inferred_from_suffix(self, tmp_path):
        out = tmp_path / "iv.csv"
        rc = main([*SIM_ARGS, "trace-run", "2-MIX", "--policy", "icount", "-o", str(out)])
        assert rc == 0
        header = out.read_text().splitlines()[0]
        assert "committed.t0" in header and "q_free.int" in header

    def test_events_written(self, tmp_path, capsys):
        iv, ev = tmp_path / "iv.jsonl", tmp_path / "ev.jsonl"
        rc = main(
            [*SIM_ARGS, "trace-run", "2-MEM", "--policy", "flush",
             "-o", str(iv), "--events", str(ev), "--event-capacity", "512"]
        )
        assert rc == 0
        events = [json.loads(line) for line in ev.read_text().splitlines()]
        assert 0 < len(events) <= 512
        assert {e["kind"] for e in events} and "wrote" in capsys.readouterr().out


class TestExplain:
    def test_prints_decisions(self, tmp_path, capsys):
        out = tmp_path / "dec.jsonl"
        rc = main(
            [*SIM_ARGS, "explain", "2-MIX", "--policy", "dwarn",
             "--last", "5", "--capacity", "64", "-o", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "fetch decisions recorded" in printed
        assert "cycle" in printed and "T0" in printed
        assert len(out.read_text().splitlines()) == 64


class TestTraceCacheResolution:
    def test_cli_flag_wins(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "/env/dir")
        assert resolve_trace_cache_dir("/cli/dir") == ("/cli/dir", "command line")

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "/env/dir")
        assert resolve_trace_cache_dir(None) == ("/env/dir", f"${TRACE_CACHE_ENV}")

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        assert resolve_trace_cache_dir(None) == (DEFAULT_TRACE_CACHE, "default")

    def test_cache_stats_reports_resolved_source(self, tmp_path, monkeypatch, capsys):
        env_dir = tmp_path / "envtraces"
        monkeypatch.setenv(TRACE_CACHE_ENV, str(env_dir))
        rc = main(["cache", "stats", "--cache-dir", str(tmp_path / "results")])
        assert rc == 0
        printed = capsys.readouterr().out
        assert str(env_dir) in printed
        assert f"trace-cache directory from ${TRACE_CACHE_ENV}" in printed

        rc = main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "results"),
             "--trace-cache", str(tmp_path / "clitraces")]
        )
        assert rc == 0
        assert "trace-cache directory from command line" in capsys.readouterr().out
