"""Tests for CSV export helpers."""

from __future__ import annotations

import csv

from repro.experiments.runner import ExperimentResult
from repro.metrics import matrix_to_csv, result_to_csv


class TestResultToCsv:
    def test_roundtrip(self, tmp_path):
        res = ExperimentResult(
            name="x", title="T", headers=["a", "b"], rows=[[1, 2.5], ["x", "y"]]
        )
        out = result_to_csv(res, tmp_path / "r.csv")
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert rows[2] == ["x", "y"]


class TestMatrixToCsv:
    def test_shape(self, tmp_path):
        matrix = {
            "2-MIX": {"icount": 1.0, "dwarn": 1.2},
            "4-MIX": {"icount": 2.0, "dwarn": 2.4},
        }
        out = matrix_to_csv(matrix, tmp_path / "m.csv")
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["workload", "icount", "dwarn"]
        assert rows[1] == ["2-MIX", "1.0", "1.2"]
        assert len(rows) == 3

    def test_missing_cells_blank(self, tmp_path):
        matrix = {"2-MIX": {"icount": 1.0}, "4-MIX": {"dwarn": 2.4}}
        out = matrix_to_csv(matrix, tmp_path / "m.csv")
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["workload", "icount", "dwarn"]
        assert rows[1] == ["2-MIX", "1.0", ""]
        assert rows[2] == ["4-MIX", "", "2.4"]

    def test_real_experiment_matrix(self, tmp_path):
        from repro.config import SimulationConfig
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(
            "baseline",
            SimulationConfig(warmup_cycles=50, measure_cycles=400, trace_length=2500),
        )
        matrix = {"2-ILP": {p: runner.run("2-ILP", p).throughput for p in ("icount", "dwarn")}}
        out = matrix_to_csv(matrix, tmp_path / "real.csv")
        rows = list(csv.reader(out.open()))
        assert float(rows[1][1]) > 0
