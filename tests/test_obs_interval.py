"""Interval-metrics collector: window alignment, per-thread counter
correctness on a hand-built micro-trace, obs-on/off behavior parity,
schema validation, export round-trips and reconciliation."""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.isa.opcodes import BranchKind, OpClass
from repro.obs import (
    INTERVAL_SCHEMA,
    IntervalCollector,
    reconcile,
    validate_record,
    write_csv,
    write_jsonl,
)
from repro.trace.profiles import get_profile
from repro.trace.synthetic import SyntheticTrace
from repro.trace.wrongpath import WrongPathSupplier
from repro.workloads import build_programs, get_workload
from repro.workloads.builder import ThreadProgram

CFG = SimulationConfig(warmup_cycles=200, measure_cycles=1500, trace_length=6000, seed=777)

PAPER_POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")


def make_sim(workload="2-MIX", policy="dwarn", simcfg=CFG):
    programs = build_programs(get_workload(workload), simcfg)
    return Simulator(baseline(), programs, make_policy(policy), simcfg)


def run_collected(workload="2-MIX", policy="dwarn", window=256, simcfg=CFG):
    sim = make_sim(workload, policy, simcfg)
    sim.obs = col = IntervalCollector(window=window)
    res = sim.run()
    return col, res


class TestWindowAlignment:
    def test_edges_are_window_multiples_or_warmup(self):
        col, _ = run_collected(window=256)
        warmup = CFG.warmup_cycles
        total = CFG.warmup_cycles + CFG.measure_cycles
        for r in col.records[:-1]:
            assert r.cycle_end % 256 == 0 or r.cycle_end == warmup
        assert col.records[-1].cycle_end == total

    def test_records_tile_the_run(self):
        col, _ = run_collected(window=256)
        assert col.records[0].cycle_start == 0
        for prev, cur in zip(col.records, col.records[1:]):
            assert cur.cycle_start == prev.cycle_end
        assert all(r.cycles == r.cycle_end - r.cycle_start for r in col.records)

    def test_warmup_cut_separates_measurement(self):
        # No interval may straddle the warm-up boundary: each lies wholly
        # inside or wholly outside the measurement window.
        col, _ = run_collected(window=256)
        warmup = CFG.warmup_cycles
        for r in col.records:
            assert r.cycle_end <= warmup or r.cycle_start >= warmup
            assert r.in_measurement == (r.cycle_start >= warmup)
        assert col.measured_records() == [r for r in col.records if r.in_measurement]

    def test_partial_final_window(self):
        # 1700 total cycles is not a multiple of 256: the final interval is
        # short, emitted by on_run_end.
        col, _ = run_collected(window=256)
        last = col.records[-1]
        assert last.cycle_end == 1700
        assert 0 < last.cycles < 256

    def test_window_larger_than_run(self):
        # One warm-up interval + one measurement interval, nothing lost.
        col, res = run_collected(window=100_000)
        assert [r.cycles for r in col.records] == [200, 1500]
        assert reconcile(col.records, res) == []

    def test_collector_is_single_use(self):
        col, _ = run_collected()
        sim = make_sim()
        sim.obs = col
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            IntervalCollector(window=0)


class TestMicroTraceCounters:
    """Per-thread counter correctness on a hand-built 2-thread trace of
    pure integer ALU instructions: no loads, no branches — so every
    memory/branch-related field must stay exactly zero, and the progress
    counters must sum to the final result."""

    @staticmethod
    def _micro_program(tid: int, length: int = 64) -> ThreadProgram:
        profile = get_profile("gzip")
        base = tid << 30
        arrays = {
            "pc": [base + 0x1000 + 4 * i for i in range(length)],
            "op": [int(OpClass.INT)] * length,
            "dest": [(i % 28) + 1 for i in range(length)],
            "src1": [((i + 1) % 28) + 1 for i in range(length)],
            "src2": [((i + 2) % 28) + 1 for i in range(length)],
            "addr": [0] * length,
            "brkind": [int(BranchKind.NONE)] * length,
            "taken": [0] * length,
            "target": [0] * length,
        }
        trace = SyntheticTrace.from_arrays(profile, length, base, 7, 0, arrays)
        return ThreadProgram(profile, trace, WrongPathSupplier(profile, base, 7))

    def _run(self, window=128):
        cfg = SimulationConfig(
            warmup_cycles=64, measure_cycles=512, trace_length=64,
            seed=7, prewarm_caches=False,
        )
        programs = [self._micro_program(0), self._micro_program(1)]
        sim = Simulator(baseline(), programs, make_policy("icount"), cfg)
        sim.obs = col = IntervalCollector(window=window)
        res = sim.run()
        return col, res

    def test_memory_and_branch_fields_all_zero(self):
        col, _ = self._run()
        for r in col.records:
            assert r.dmiss == [0, 0]
            assert r.l2_outstanding == [0, 0]
            assert r.group == ["normal", "normal"]
            assert r.gated == [False, False]
            assert r.gated_cycles == [0, 0]
            assert r.flushes == [0, 0]
            assert r.squashed_flush == [0, 0]
            assert r.squashed_mispredict == [0, 0]
            assert r.mispredicts == [0, 0]

    def test_progress_counters_sum_to_result(self):
        col, res = self._run()
        measured = col.measured_records()
        for t in range(2):
            assert sum(r.committed[t] for r in measured) == res.committed[t]
            assert sum(r.fetched[t] for r in measured) == res.fetched[t]

    def test_ipc_is_committed_over_cycles(self):
        col, _ = self._run()
        for r in col.records:
            for t in range(2):
                assert r.ipc[t] == pytest.approx(r.committed[t] / r.cycles)

    def test_occupancy_fields_sampled_sane(self):
        col, _ = self._run()
        machine = baseline()
        for r in col.records:
            assert all(v >= 0 for v in r.icount)
            assert all(v >= 0 for v in r.rob)
            assert len(r.q_free) == 3
            assert 0 <= r.free_int_regs <= machine.proc.int_regs

    def test_reconciles(self):
        col, res = self._run()
        assert reconcile(col.records, res) == []


class TestParity:
    """Attaching the collector must not change simulated behavior: digests
    bit-identical with observability enabled vs disabled, for all six
    paper policies."""

    @pytest.mark.parametrize("policy", PAPER_POLICIES)
    def test_digest_identical_with_and_without_obs(self, policy):
        plain = make_sim("2-MIX", policy).run()
        col, instrumented = run_collected("2-MIX", policy, window=256)
        assert instrumented.cycles == plain.cycles
        assert instrumented.committed == plain.committed
        assert instrumented.fetched == plain.fetched
        assert instrumented.ipc == plain.ipc
        assert reconcile(col.records, instrumented) == []


class TestValidation:
    def test_real_records_validate(self):
        col, _ = run_collected()
        for r in col.records:
            assert validate_record(r.as_dict(), num_threads=2) == []

    def test_missing_field(self):
        col, _ = run_collected()
        data = col.records[0].as_dict()
        del data["ipc"]
        assert any("missing field 'ipc'" in p for p in validate_record(data, 2))

    def test_unknown_field(self):
        col, _ = run_collected()
        data = col.records[0].as_dict()
        data["bogus"] = 1
        assert any("unknown field 'bogus'" in p for p in validate_record(data, 2))

    def test_wrong_thread_count(self):
        col, _ = run_collected()
        data = col.records[0].as_dict()
        assert validate_record(data, num_threads=4) != []

    def test_q_free_is_per_queue_not_per_thread(self):
        # q_free always has 3 elements (int/fp/ls) regardless of threads.
        col, _ = run_collected()
        data = col.records[0].as_dict()
        assert len(data["q_free"]) == 3
        assert validate_record(data, num_threads=2) == []
        data["q_free"] = [1, 2]
        assert any("q_free" in p for p in validate_record(data, 2))

    def test_type_mismatches(self):
        col, _ = run_collected()
        data = col.records[0].as_dict()
        data["issued"] = "lots"
        data["committed"] = 5
        problems = validate_record(data, 2)
        assert any("issued" in p for p in problems)
        assert any("committed" in p for p in problems)

    def test_thread_series(self):
        col, _ = run_collected()
        series = col.thread_series("ipc", 0)
        assert series == [r.ipc[0] for r in col.records]
        with pytest.raises(KeyError):
            col.thread_series("issued", 0)


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        col, _ = run_collected()
        path = write_jsonl(col.records, tmp_path / "iv.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(col.records)
        for line, rec in zip(lines, col.records):
            data = json.loads(line)
            assert validate_record(data, num_threads=2) == []
            assert data == rec.as_dict()

    def test_csv_headers_flatten_per_thread(self, tmp_path):
        col, _ = run_collected()
        path = write_csv(col.records, tmp_path / "iv.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        header = rows[0]
        assert "committed.t0" in header and "committed.t1" in header
        assert {"q_free.int", "q_free.fp", "q_free.ls"} <= set(header)
        assert "window" in header
        assert len(rows) == len(col.records) + 1
        assert all(len(row) == len(header) for row in rows[1:])

    def test_csv_empty_records(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""


class TestSchemaDocsSync:
    def test_observability_md_documents_every_field(self):
        """The field-by-field table in docs/OBSERVABILITY.md must list
        exactly INTERVAL_SCHEMA's fields, in order, with matching kinds."""
        doc = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"
        rows = re.findall(r"^\| `(\w+)` \| `(\[?\w+\]?)` \|", doc.read_text(), re.M)
        documented = {name: kind for name, kind in rows}
        schema = {name: kind for name, (kind, _) in INTERVAL_SCHEMA.items()}
        assert documented == schema
        assert [name for name, _ in rows] == list(INTERVAL_SCHEMA)


class TestReconcile:
    def test_clean_on_real_runs(self):
        for policy in ("icount", "flush"):
            col, res = run_collected("2-MEM", policy)
            assert reconcile(col.records, res) == []

    def test_detects_tampering(self):
        col, res = run_collected()
        col.measured_records()[0].committed[0] += 1
        problems = reconcile(col.records, res)
        assert any("committed" in p for p in problems)
