"""Checkpoint/resume campaign: preemptible execution must be bit-exact.

Three layers are pinned here, mirroring the service's preemption path:

- **Parity** — ``run_checkpointed`` is behavior-neutral, and resuming from
  any captured envelope on a fresh simulator finishes bit-identical to a
  run that never paused, across the staged and fused engines and against
  the vectorized batch backend, for all six static policies *and* the
  meta-policy (whose hysteresis state and shared gate counters must
  survive the round trip).
- **Envelope codec** — ``checkpoint_to_bytes`` / ``peek_checkpoint`` /
  ``checkpoint_from_bytes`` reject corruption, truncation, version skew
  and header/payload cycle disagreement with :class:`SnapshotError`.
- **Wire path** — the server's ``PUT /v1/leases/{id}/checkpoint`` answers
  every hostile upload with a clean 4xx (hypothesis-fuzzed: byte-mutated,
  truncated and version-skewed envelopes, plus arbitrary JSON bodies),
  never a 5xx, and never stores a corrupt resume point; the worker's
  grant decoding fails open to a cold cycle-0 run rather than raising —
  the same fail-closed/fail-open discipline tests/test_trace_ingest.py
  pins for the ingest boundary.

Plus the cost-model regression: resumed jobs train the scheduler with
full-run-equivalent seconds, so repeated preemption cannot deflate (or
re-recording inflate) the learned EMA costs.
"""

from __future__ import annotations

import base64
import json
import struct

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.columnar import (
    CHECKPOINT_VERSION,
    ColumnarState,
    SnapshotError,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    peek_checkpoint,
    run_checkpointed,
)
from repro.core.vec import run_batch
from repro.experiments.parallel import SweepCostModel, simulate_resumable
from repro.workloads import build_programs, get_workload

POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")

_CKPT_HEADER = struct.Struct("<4sHQQI")


def _simcfg(**kw) -> SimulationConfig:
    base = dict(warmup_cycles=100, measure_cycles=400, trace_length=3_000, seed=2024)
    base.update(kw)
    return SimulationConfig(**base)


def _fresh_sim(workload: str, policy: str, simcfg: SimulationConfig) -> Simulator:
    programs = build_programs(get_workload(workload), simcfg)
    return Simulator(baseline(), programs, make_policy(policy), simcfg)


def _assert_same_outcome(a: Simulator, b: Simulator) -> None:
    assert a.result() == b.result()
    assert a.cycle == b.cycle
    assert list(a.stats.committed) == list(b.stats.committed)
    assert list(a.stats.fetched) == list(b.stats.fetched)
    assert list(a.stats.gated_cycles) == list(b.stats.gated_cycles)
    assert list(a.stats.mispredicts) == list(b.stats.mispredicts)


def _capture_envelopes(
    workload: str, policy: str, simcfg: SimulationConfig, interval: int
):
    """Run to completion under ``run_checkpointed``; returns the final
    result plus every envelope captured along the way."""
    sim = _fresh_sim(workload, policy, simcfg)
    envelopes: list[bytes] = []
    result = run_checkpointed(
        sim, interval, lambda s: envelopes.append(checkpoint_to_bytes(s))
    )
    return result, envelopes, sim


def _resume_from(
    envelope: bytes,
    workload: str,
    policy: str,
    simcfg: SimulationConfig,
    *,
    staged: bool = False,
) -> Simulator:
    """Decode an envelope, restore onto a fresh simulator, finish the run."""
    cycle, total, state = checkpoint_from_bytes(envelope)
    sim = _fresh_sim(workload, policy, simcfg)
    state.restore_into(sim)
    assert sim.cycle == cycle
    if staged:
        sim._step = sim._step  # pin => staged reference path
        assert not sim._fast_eligible()
    sim.run_cycles(total - cycle)
    sim.validate_state()
    return sim


# ----------------------------------------------------------------------
# Parity: resumed == uninterrupted, bit for bit


class TestBitExactResume:
    @pytest.mark.parametrize("policy", POLICIES + ("meta",))
    def test_every_envelope_resumes_bit_identical(self, policy):
        """Checkpointing is behavior-neutral, and *every* captured envelope
        — early, mid-run, late — finishes bit-identical to the reference,
        including one captured before the warmup window closes."""
        simcfg = _simcfg()
        ref = _fresh_sim("2-MEM", policy, simcfg)
        ref_result = ref.run()
        ckpt_result, envelopes, _ = _capture_envelopes("2-MEM", policy, simcfg, 125)
        assert ckpt_result == ref_result
        assert [peek_checkpoint(e)[0] for e in envelopes] == [125, 250, 375]
        for envelope in envelopes:
            resumed = _resume_from(envelope, "2-MEM", policy, simcfg)
            _assert_same_outcome(ref, resumed)

    def test_resume_onto_staged_engine_matches(self):
        """A checkpoint captured under the fused engine restores onto the
        staged reference path and still finishes bit-identically."""
        simcfg = _simcfg()
        ref = _fresh_sim("2-MEM", "dwarn", simcfg)
        ref_result = ref.run()
        _, envelopes, _ = _capture_envelopes("2-MEM", "dwarn", simcfg, 250)
        resumed = _resume_from(envelopes[0], "2-MEM", "dwarn", simcfg, staged=True)
        assert resumed.result() == ref_result

    def test_resume_matches_vec_batch_reference(self):
        """Resumed serial runs agree with the vectorized batch backend's
        uninterrupted lanes — the parity triangle closes across engines."""
        simcfg = _simcfg()
        lanes = [("2-MEM", pol) for pol in POLICIES]
        vec_results = run_batch(baseline(), simcfg, lanes)
        for (wl, pol), vec_result in zip(lanes, vec_results):
            _, envelopes, _ = _capture_envelopes(wl, pol, simcfg, 250)
            resumed = _resume_from(envelopes[0], wl, pol, simcfg)
            assert resumed.result() == vec_result, f"{wl}/{pol} diverged from vec"

    def test_meta_hysteresis_and_shared_gate_counters_survive(self):
        """The meta-policy's switch history, streak state and the gate-count
        array it *shares by identity* with its gating sub-policies must all
        survive the round trip — a copied (non-shared) array would silently
        desynchronize gating statistics after resume."""
        simcfg = _simcfg(measure_cycles=1_400, trace_length=6_000, seed=7)
        ref = _fresh_sim("2-MEM", "meta-w64", simcfg)
        ref_result = ref.run()
        _, envelopes, _ = _capture_envelopes("2-MEM", "meta-w64", simcfg, 500)
        resumed = _resume_from(envelopes[-1], "2-MEM", "meta-w64", simcfg)
        assert resumed.result() == ref_result
        assert resumed.policy.switches == ref.policy.switches
        assert resumed.policy._streak == ref.policy._streak
        assert resumed.policy._streak_name == ref.policy._streak_name
        shared = [
            sub
            for sub in resumed.policy._subs.values()
            if hasattr(sub, "_gate_count")
        ]
        assert shared, "expected gating sub-policies under the meta-policy"
        for sub in shared:
            assert sub._gate_count is resumed.policy._gate_count

    def test_run_checkpointed_rejects_bad_interval_and_observed_sims(self):
        simcfg = _simcfg()
        sim = _fresh_sim("2-MEM", "dwarn", simcfg)
        with pytest.raises(ValueError):
            run_checkpointed(sim, 0, lambda s: None)


# ----------------------------------------------------------------------
# Envelope codec failure modes


def _one_envelope(simcfg=None, workload="2-MEM", policy="dwarn", at=200) -> bytes:
    simcfg = simcfg or _simcfg(warmup_cycles=0, measure_cycles=500)
    sim = _fresh_sim(workload, policy, simcfg)
    sim._begin_window()
    sim.run_cycles(at)
    return checkpoint_to_bytes(sim)


class TestCheckpointEnvelope:
    def test_roundtrip_and_peek(self):
        envelope = _one_envelope()
        assert envelope[:4] == b"DWCK"
        assert peek_checkpoint(envelope) == (200, 500)
        cycle, total, state = checkpoint_from_bytes(envelope)
        assert (cycle, total) == (200, 500)
        assert isinstance(state, ColumnarState)

    def test_version_skew_rejected(self):
        envelope = _one_envelope()
        magic, version, cycle, total, crc = _CKPT_HEADER.unpack_from(envelope)
        assert version == CHECKPOINT_VERSION
        skewed = _CKPT_HEADER.pack(magic, version + 1, cycle, total, crc)
        skewed += envelope[_CKPT_HEADER.size:]
        with pytest.raises(SnapshotError):
            peek_checkpoint(skewed)

    def test_truncation_and_bad_magic_rejected(self):
        envelope = _one_envelope()
        for cut in (0, 3, _CKPT_HEADER.size, len(envelope) // 2):
            with pytest.raises(SnapshotError):
                peek_checkpoint(envelope[:cut])
        with pytest.raises(SnapshotError):
            peek_checkpoint(b"XXXX" + envelope[4:])

    def test_payload_corruption_rejected(self):
        envelope = bytearray(_one_envelope())
        envelope[-1] ^= 0xFF
        with pytest.raises(SnapshotError):
            peek_checkpoint(bytes(envelope))

    def test_header_cycle_must_match_snapshot_cycle(self):
        """The header cycle is outside the CRC (it guards the snapshot
        blob), so a tampered header must be caught by the cross-check
        against the snapshot's own metadata."""
        envelope = _one_envelope()
        magic, version, cycle, total, crc = _CKPT_HEADER.unpack_from(envelope)
        forged = _CKPT_HEADER.pack(magic, version, cycle + 1, total, crc)
        forged += envelope[_CKPT_HEADER.size:]
        assert peek_checkpoint(forged) == (201, 500)  # peek alone can't tell
        with pytest.raises(SnapshotError):
            checkpoint_from_bytes(forged)


# ----------------------------------------------------------------------
# Server endpoint: deterministic reject matrix


def _svc_with_lease():
    """An in-process service holding one leased checkpointable job.

    The executor loop never runs (no asyncio loop), so the job stays
    leased for as long as the test needs; ``_route`` is synchronous.
    """
    from repro.service.server import ServiceConfig, SimulationService

    svc = SimulationService(ServiceConfig())
    spec = {
        "workload": "2-MEM",
        "policy": "dwarn",
        "seed": 2024,
        "warmup_cycles": 0,
        "measure_cycles": 500,
        "trace_length": 3_000,
    }
    status, payload, _ = svc._route("POST", "/v1/jobs", json.dumps(spec).encode())
    assert status in (200, 202), payload
    status, grant, _ = svc._route(
        "POST", "/v1/leases", json.dumps({"worker": "w0", "capacity": 1}).encode()
    )
    assert status == 200 and grant["jobs"], grant
    return svc, grant["lease"]["id"], grant["jobs"][0]["id"]


def _put_checkpoint(svc, lease_id: str, body: dict) -> tuple[int, dict]:
    status, payload, _ = svc._route(
        "PUT", f"/v1/leases/{lease_id}/checkpoint", json.dumps(body).encode()
    )
    return status, payload


@pytest.fixture(scope="module")
def envelope_500() -> bytes:
    """One valid envelope matching the ``_svc_with_lease`` job horizon."""
    return _one_envelope(_simcfg(warmup_cycles=0, measure_cycles=500), at=200)


class TestServerCheckpointEndpoint:
    def test_accept_then_latest_cycle_wins(self, envelope_500):
        svc, lease_id, job_id = _svc_with_lease()
        later = _one_envelope(_simcfg(warmup_cycles=0, measure_cycles=500), at=300)
        b64 = base64.b64encode(later).decode()
        status, payload = _put_checkpoint(
            svc, lease_id, {"job_id": job_id, "cycle": 300, "data": b64}
        )
        assert (status, payload["stored"], payload["cycle"]) == (200, True, 300)
        # An out-of-order (older) upload is acknowledged but never regresses.
        earlier = base64.b64encode(envelope_500).decode()
        status, payload = _put_checkpoint(
            svc, lease_id, {"job_id": job_id, "cycle": 200, "data": earlier}
        )
        assert (status, payload["stored"], payload["cycle"]) == (200, False, 300)
        key = svc.jobs[job_id].key
        assert svc.checkpoints[key].cycle == 300
        # The redelivered lease ships the stored resume point.
        svc._redeliver(svc.jobs[job_id], "test preemption")
        status, grant, _ = svc._route(
            "POST", "/v1/leases", json.dumps({"worker": "w1", "capacity": 1}).encode()
        )
        assert status == 200
        entry = grant["jobs"][0]
        assert entry["checkpoint"]["cycle"] == 300
        assert base64.b64decode(entry["checkpoint"]["data"]) == later
        assert grant["checkpoint_version"] == CHECKPOINT_VERSION

    def test_unknown_lease_410_but_not_consumed(self, envelope_500):
        svc, lease_id, job_id = _svc_with_lease()
        b64 = base64.b64encode(envelope_500).decode()
        status, _ = _put_checkpoint(
            svc, "nope", {"job_id": job_id, "cycle": 200, "data": b64}
        )
        assert status == 410
        # The real lease is still alive: a heartbeat succeeds.
        status, _, _ = svc._route("POST", f"/v1/leases/{lease_id}/heartbeat", b"{}")
        assert status == 200

    def test_wrong_job_404_and_wrong_method_405(self, envelope_500):
        svc, lease_id, _ = _svc_with_lease()
        b64 = base64.b64encode(envelope_500).decode()
        status, _ = _put_checkpoint(
            svc, lease_id, {"job_id": "stranger", "cycle": 200, "data": b64}
        )
        assert status == 404
        status, _, _ = svc._route(
            "POST", f"/v1/leases/{lease_id}/checkpoint", b"{}"
        )
        assert status == 405

    def test_horizon_mismatch_rejected(self):
        svc, lease_id, job_id = _svc_with_lease()
        alien = _one_envelope(_simcfg(warmup_cycles=0, measure_cycles=400), at=200)
        b64 = base64.b64encode(alien).decode()
        status, payload = _put_checkpoint(
            svc, lease_id, {"job_id": job_id, "cycle": 200, "data": b64}
        )
        assert status == 400 and "horizon" in payload["error"]
        assert not svc.checkpoints

    def test_oversized_and_malformed_bodies_rejected(self, envelope_500):
        svc, lease_id, job_id = _svc_with_lease()
        from repro.service.protocol import MAX_CHECKPOINT_BYTES

        huge = base64.b64encode(b"\0" * (MAX_CHECKPOINT_BYTES + 1)).decode()
        status, _ = _put_checkpoint(
            svc, lease_id, {"job_id": job_id, "cycle": 200, "data": huge}
        )
        assert status == 400
        for body in (
            {},
            {"job_id": job_id},
            {"job_id": job_id, "cycle": -1, "data": "AA=="},
            {"job_id": job_id, "cycle": 200, "data": "not base64!!"},
            {"job_id": job_id, "cycle": 200, "data": "AA==", "extra": 1},
        ):
            status, _ = _put_checkpoint(svc, lease_id, body)
            assert status == 400, body
        assert not svc.checkpoints

    def test_completion_pops_resume_point(self, envelope_500):
        svc, lease_id, job_id = _svc_with_lease()
        b64 = base64.b64encode(envelope_500).decode()
        status, _ = _put_checkpoint(
            svc, lease_id, {"job_id": job_id, "cycle": 200, "data": b64}
        )
        assert status == 200 and svc.checkpoints
        results = [
            {
                "job_id": job_id,
                "ok": False,
                "error": "synthetic terminal outcome",
            }
        ]
        status, _, _ = svc._route(
            "POST",
            f"/v1/leases/{lease_id}/result",
            json.dumps({"results": results}).encode(),
        )
        assert status == 200
        assert not svc.checkpoints  # the outcome supersedes the checkpoint


# ----------------------------------------------------------------------
# Hypothesis fuzzing of the wire path

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

_FUZZ_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _mutations(envelope: bytes):
    """Byte flips, truncations, and version skews of one valid envelope."""
    flip = st.tuples(
        st.integers(0, len(envelope) - 1), st.integers(1, 255)
    ).map(
        lambda t: envelope[: t[0]]
        + bytes([envelope[t[0]] ^ t[1]])
        + envelope[t[0] + 1:]
    )
    truncate = st.integers(0, len(envelope) - 1).map(lambda k: envelope[:k])
    skew = st.integers(1, 0xFFFF - CHECKPOINT_VERSION).map(
        lambda d: envelope[:4]
        + struct.pack("<H", CHECKPOINT_VERSION + d)
        + envelope[6:]
    )
    return st.one_of(flip, truncate, skew)


class TestWirePathFuzz:
    @given(data=st.data())
    @settings(**_FUZZ_SETTINGS)
    def test_mutated_envelopes_always_4xx_and_never_stored(
        self, data, envelope_500
    ):
        """Any single corruption of a valid envelope — bit flip anywhere,
        truncation, version skew — is rejected with a 4xx and leaves the
        resume table empty. No 5xx, no silently-wrong resume point."""
        svc, lease_id, job_id = _svc_with_lease()
        mutant = data.draw(_mutations(envelope_500))
        status, payload = _put_checkpoint(
            svc,
            lease_id,
            {
                "job_id": job_id,
                "cycle": 200,
                "data": base64.b64encode(mutant).decode(),
            },
        )
        assert 400 <= status < 500, (status, payload)
        assert not svc.checkpoints
        json.dumps(payload)

    @given(
        body=st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**63), 2**63),
                st.floats(allow_nan=False),
                st.text(max_size=20),
            ),
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.dictionaries(st.text(max_size=8), inner, max_size=4),
            ),
            max_leaves=8,
        )
    )
    @settings(**_FUZZ_SETTINGS)
    def test_arbitrary_json_bodies_never_5xx(self, body):
        svc, lease_id, _ = _svc_with_lease()
        status, payload, _ = svc._route(
            "PUT",
            f"/v1/leases/{lease_id}/checkpoint",
            json.dumps(body).encode(),
        )
        assert 200 <= status < 500, (status, payload)
        assert not svc.checkpoints
        json.dumps(payload)

    @given(data=st.data())
    @settings(**_FUZZ_SETTINGS)
    def test_worker_grant_decode_fails_open(self, data, envelope_500):
        """The worker side of the same boundary: a corrupt shipped grant
        must yield ``restore=None`` (cold cycle-0 rerun), never raise."""
        from repro.service.protocol import JobSpec
        from repro.service.worker import Worker, WorkerConfig

        worker = Worker(WorkerConfig(quiet=True), transport=object())
        spec = JobSpec.from_dict(
            {
                "workload": "2-MEM",
                "policy": "dwarn",
                "seed": 2024,
                "warmup_cycles": 0,
                "measure_cycles": 500,
                "trace_length": 3_000,
            }
        )
        grant_data = data.draw(
            st.one_of(
                _mutations(envelope_500).map(
                    lambda m: base64.b64encode(m).decode()
                ),
                st.text(max_size=40),
                st.integers(),
                st.none(),
            )
        )
        cycle = data.draw(st.integers(-5, 600))
        state = worker._decode_checkpoint(
            spec, {"cycle": cycle, "data": grant_data}
        )
        assert state is None or isinstance(state, ColumnarState)


# ----------------------------------------------------------------------
# Cost-model training under preemption


class TestCostModelUnderPreemption:
    MACHINE = "baseline"

    def test_partial_secs_scale_to_full_equivalent(self):
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        model = SweepCostModel(None)
        # Resumed from 50%: the incremental 5s means a 10s full run.
        model.record_partial(
            self.MACHINE, simcfg, "2-MEM", "dwarn", 5.0, resumed_from=250
        )
        assert model.estimate(self.MACHINE, simcfg, "2-MEM", "dwarn") == pytest.approx(10.0)

    def test_zero_resume_degenerates_to_record(self):
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        model = SweepCostModel(None)
        model.record_partial(self.MACHINE, simcfg, "2-MEM", "dwarn", 7.5)
        assert model.estimate(self.MACHINE, simcfg, "2-MEM", "dwarn") == pytest.approx(7.5)

    def test_repeated_preemption_does_not_inflate_ema(self):
        """The regression: re-recording full wall time on every redelivery
        used to inflate the EMA; scaled incremental records keep it at the
        true full-run cost no matter how often the job is preempted."""
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=1_000)
        model = SweepCostModel(None)
        model.record(self.MACHINE, simcfg, "2-MEM", "dwarn", 10.0)
        for _ in range(8):
            # Preempted at 60%: the resumed worker pays 4s for the last 40%.
            model.record_partial(
                self.MACHINE, simcfg, "2-MEM", "dwarn", 4.0, resumed_from=600
            )
        assert model.estimate(self.MACHINE, simcfg, "2-MEM", "dwarn") == pytest.approx(
            10.0
        )

    def test_out_of_range_resume_points_fall_back_to_raw_secs(self):
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        for resumed_from in (-1, 500, 10_000):
            model = SweepCostModel(None)
            model.record_partial(
                self.MACHINE, simcfg, "2-MEM", "dwarn", 3.0, resumed_from=resumed_from
            )
            assert model.estimate(
                self.MACHINE, simcfg, "2-MEM", "dwarn"
            ) == pytest.approx(3.0)


# ----------------------------------------------------------------------
# simulate_resumable: the worker's execution primitive


class TestSimulateResumable:
    def test_resumes_from_state_and_matches_cold(self):
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        cold, resumed_from, _ = simulate_resumable(
            baseline(), simcfg, "2-MEM", "dwarn"
        )
        assert resumed_from == 0
        envelope = _one_envelope(simcfg, at=200)
        _, _, state = checkpoint_from_bytes(envelope)
        warm, resumed_from, _ = simulate_resumable(
            baseline(), simcfg, "2-MEM", "dwarn", restore=state
        )
        assert resumed_from == 200
        assert warm == cold

    def test_fail_open_on_mismatched_snapshot(self):
        """A snapshot from a different workload shape (4 threads vs 2)
        cannot restore; the job silently reruns cold instead of failing."""
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        cold, _, _ = simulate_resumable(baseline(), simcfg, "2-MEM", "dwarn")
        alien_env = _one_envelope(simcfg, workload="4-MIX", at=200)
        _, _, alien = checkpoint_from_bytes(alien_env)
        result, resumed_from, _ = simulate_resumable(
            baseline(), simcfg, "2-MEM", "dwarn", restore=alien
        )
        assert resumed_from == 0
        assert result == cold

    def test_on_checkpoint_fires_at_interval_edges(self):
        simcfg = _simcfg(warmup_cycles=0, measure_cycles=500)
        seen: list[int] = []
        result, resumed_from, _ = simulate_resumable(
            baseline(),
            simcfg,
            "2-MEM",
            "dwarn",
            checkpoint_interval=125,
            on_checkpoint=lambda sim: seen.append(sim.cycle),
        )
        assert seen == [125, 250, 375]
        assert resumed_from == 0
        cold, _, _ = simulate_resumable(baseline(), simcfg, "2-MEM", "dwarn")
        assert result == cold
