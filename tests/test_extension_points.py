"""The documented extension recipes (docs/USAGE.md) must actually work:
custom benchmark profiles, custom workloads, custom machines, custom
policies — exercised end to end through the simulator.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.policies.base import FetchPolicy
from repro.trace import generate_trace
from repro.trace.calibration import replay_miss_rates
from repro.trace.profiles import BenchmarkProfile
from repro.workloads import build_programs
from repro.workloads.builder import ThreadProgram, _make_program
from repro.workloads.specint import WorkloadSpec

CFG = SimulationConfig(warmup_cycles=200, measure_cycles=2000, trace_length=8000, seed=41)


@pytest.fixture(scope="module")
def custom_profile() -> BenchmarkProfile:
    """A made-up streaming benchmark: moderate misses, all of them cold."""
    return BenchmarkProfile(
        name="streamer",
        thread_type="MEM",
        l1_missrate=0.08,
        l2_missrate=0.07,
        load_frac=0.30,
        store_frac=0.10,
        branch_frac=0.12,
        dep_window=14,
        load_indep_frac=0.6,
        n_blocks=300,
    )


class TestCustomProfile:
    def test_trace_generates(self, custom_profile):
        trace = generate_trace(custom_profile, 6000, base=1 << 30, seed=9)
        assert len(trace) == 6000

    def test_replay_matches_declared_rates(self, custom_profile):
        trace = generate_trace(custom_profile, 20_000, base=1 << 30, seed=9)
        res = replay_miss_rates(trace)
        assert res.l1_missrate == pytest.approx(0.08, abs=0.03)
        assert res.l2_missrate == pytest.approx(0.07, abs=0.03)

    def test_runs_through_the_pipeline(self, custom_profile):
        program = _make_program.__wrapped__ if hasattr(_make_program, "__wrapped__") else None
        # Build the program manually (the builder only knows PROFILES names).
        from repro.trace.synthetic import generate_trace as gen
        from repro.trace.wrongpath import WrongPathSupplier

        trace = gen(custom_profile, CFG.trace_length, 0, CFG.seed)
        prog = ThreadProgram(custom_profile, trace, WrongPathSupplier(custom_profile, 0, 7))
        sim = Simulator(baseline(), [prog], make_policy("dwarn"), CFG)
        res = sim.run()
        assert res.committed[0] > 200
        assert res.l2_load_missrate(0) > 0.02  # the cold tier shows up


class TestCustomWorkload:
    def test_spec_and_simulation(self):
        spec = WorkloadSpec("3-CUSTOM", ("mcf", "gzip", "eon"))
        programs = build_programs(spec, CFG)
        assert [p.profile.name for p in programs] == ["mcf", "gzip", "eon"]
        sim = Simulator(baseline(), programs, make_policy("dwarn"), CFG)
        res = sim.run()
        assert res.num_threads == 3
        assert all(c > 0 for c in res.committed)

    def test_class_properties(self):
        spec = WorkloadSpec("3-CUSTOM", ("mcf", "gzip", "eon"))
        assert spec.num_threads == 3
        assert spec.wl_class == "CUSTOM"
        assert spec.size_class == 3


class TestCustomMachine:
    def test_modified_machine_runs(self):
        machine = (
            baseline()
            .with_proc(int_queue=16, ls_queue=16)
            .with_mem(memory_latency=300)
            .renamed("tiny-queues-slow-mem")
        )
        programs = build_programs(WorkloadSpec("2-X", ("gzip", "mcf")), CFG)
        res = Simulator(machine, programs, make_policy("dwarn"), CFG).run()
        assert res.machine == "tiny-queues-slow-mem"
        assert all(c > 0 for c in res.committed)

    def test_smaller_queues_hurt(self):
        wl = WorkloadSpec("2-X", ("gzip", "mcf"))
        big = Simulator(baseline(), build_programs(wl, CFG), make_policy("icount"), CFG).run()
        small_q = baseline().with_proc(int_queue=8, fp_queue=8, ls_queue=8).renamed("q8")
        small = Simulator(small_q, build_programs(wl, CFG), make_policy("icount"), CFG).run()
        assert small.throughput < big.throughput


class TestCustomPolicy:
    def test_minimal_policy(self):
        class ReverseICount(FetchPolicy):
            """Pathological: prioritize the *fullest* thread."""

            name = "reverse"

            def fetch_order(self):
                threads = self.sim.threads
                return sorted(
                    range(self.sim.num_threads),
                    key=lambda t: -threads[t].icount,
                )

        programs = build_programs(WorkloadSpec("2-X", ("gzip", "twolf")), CFG)
        sim = Simulator(baseline(), programs, ReverseICount(), CFG)
        res = sim.run()
        sim.validate_state()
        assert all(c > 0 for c in res.committed)

    def test_gating_policy_via_mixin(self):
        from repro.core.policies.base import GatingMixin

        class GateEverythingOnce(GatingMixin, FetchPolicy):
            """Gates thread 0 on its first L1 miss (smoke for the mixin)."""

            name = "gate-once"

            def setup(self):
                self.setup_gating()
                self.fired = False

            def fetch_order(self):
                return self.icount_order(self.ungated_tids())

            def on_l1d_miss(self, i):
                if not self.fired and not i.wrongpath:
                    self.fired = self.gate_until_fill(i)

        programs = build_programs(WorkloadSpec("2-X", ("mcf", "gzip")), CFG)
        sim = Simulator(baseline(), programs, GateEverythingOnce(), CFG)
        sim.run()
        assert sim.policy.fired
        assert sum(sim.stats.gated_cycles) > 0
