"""Tests for machine/simulation configuration and the three paper presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    MemoryConfig,
    SimulationConfig,
    TLBConfig,
    baseline,
    deep,
    get_preset,
    small,
)


class TestBaselinePreset:
    """Table 3 values, verbatim."""

    def test_widths(self):
        cfg = baseline()
        assert cfg.proc.fetch_width == 8
        assert cfg.proc.issue_width == 8
        assert cfg.proc.commit_width == 8
        assert cfg.proc.fetch_threads == 2  # ICOUNT 2.8

    def test_queues_and_units(self):
        cfg = baseline()
        assert (cfg.proc.int_queue, cfg.proc.fp_queue, cfg.proc.ls_queue) == (32, 32, 32)
        assert (cfg.proc.int_units, cfg.proc.fp_units, cfg.proc.ls_units) == (6, 3, 4)

    def test_registers_and_rob(self):
        cfg = baseline()
        assert cfg.proc.int_regs == 384
        assert cfg.proc.fp_regs == 384
        assert cfg.proc.rob_entries == 256

    def test_branch_predictor(self):
        cfg = baseline()
        assert cfg.proc.branch.gshare_entries == 2048
        assert cfg.proc.branch.btb_entries == 256
        assert cfg.proc.branch.btb_assoc == 4
        assert cfg.proc.branch.ras_entries == 256

    def test_memory(self):
        cfg = baseline()
        assert cfg.mem.icache.size_bytes == 64 * 1024
        assert cfg.mem.dcache.size_bytes == 64 * 1024
        assert cfg.mem.dcache.assoc == 2
        assert cfg.mem.dcache.banks == 8
        assert cfg.mem.l2.size_bytes == 512 * 1024
        assert cfg.mem.l2.latency == 10
        assert cfg.mem.memory_latency == 100
        assert cfg.mem.dtlb.miss_penalty == 160
        assert cfg.mem.l2_declare_cycles == 15
        assert cfg.mem.fill_advance_cycles == 2

    def test_latency_helpers(self):
        cfg = baseline()
        assert cfg.mem.l1_miss_l2_hit_latency == 11
        assert cfg.mem.l2_miss_latency == 111


class TestSmallPreset:
    """§6 'less aggressive' machine: 4-wide, 1.4 fetch, 256 regs."""

    def test_values(self):
        cfg = small()
        assert cfg.proc.fetch_width == 4
        assert cfg.proc.fetch_threads == 1  # 1.4 fetch
        assert cfg.proc.int_regs == 256
        assert (cfg.proc.int_units, cfg.proc.fp_units, cfg.proc.ls_units) == (3, 2, 2)
        assert cfg.proc.max_contexts == 4


class TestDeepPreset:
    """§6 'deeper' machine: 16 stages, 64-entry queues, slower hierarchy."""

    def test_values(self):
        cfg = deep()
        assert cfg.proc.frontend_depth > baseline().proc.frontend_depth
        assert cfg.proc.int_queue == 64
        assert cfg.mem.l2.latency == 15
        assert cfg.mem.memory_latency == 200


class TestPresetRegistry:
    def test_get_preset(self):
        assert get_preset("baseline").name == "baseline"
        assert get_preset("small").name == "small"
        assert get_preset("deep").name == "deep"

    def test_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="small"):
            get_preset("nope")

    def test_presets_are_hashable_and_distinct(self):
        assert len({baseline(), small(), deep()}) == 3

    def test_presets_validate(self):
        for cfg in (baseline(), small(), deep()):
            cfg.validate()


class TestValidation:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError, match="fetch_width"):
            dataclasses.replace(baseline().proc, fetch_width=0).validate()

    def test_rename_headroom_required(self):
        with pytest.raises(ValueError, match="rename"):
            dataclasses.replace(baseline().proc, int_regs=256, max_contexts=8).validate()

    def test_cache_power_of_two_sets(self):
        with pytest.raises(ValueError):
            # 24KB 2-way/64B -> 192 sets: not a power of two.
            CacheConfig("x", 24 * 1024, 2, 64).validate()

    def test_cache_line_power_of_two(self):
        with pytest.raises(ValueError, match="line_bytes"):
            CacheConfig("x", 64 * 1024, 2, 48).validate()

    def test_tlb_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0).validate()
        with pytest.raises(ValueError):
            TLBConfig(page_bytes=3000).validate()

    def test_memory_line_size_mismatch(self):
        mem = dataclasses.replace(
            MemoryConfig(), dcache=CacheConfig("dcache", 64 * 1024, 2, 32)
        )
        with pytest.raises(ValueError, match="line"):
            mem.validate()

    def test_simulation_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(measure_cycles=0).validate()
        with pytest.raises(ValueError):
            SimulationConfig(warmup_cycles=-1).validate()
        with pytest.raises(ValueError):
            SimulationConfig(trace_length=0).validate()

    def test_history_bits_bounded(self):
        from repro.config.processor import BranchPredictorConfig

        with pytest.raises(ValueError, match="history_bits"):
            BranchPredictorConfig(gshare_entries=256, history_bits=20).validate()


class TestMachineConfigHelpers:
    def test_with_proc(self):
        cfg = baseline().with_proc(fetch_width=4)
        assert cfg.proc.fetch_width == 4
        assert cfg.proc.issue_width == 8  # untouched

    def test_with_mem(self):
        cfg = baseline().with_mem(memory_latency=200)
        assert cfg.mem.memory_latency == 200

    def test_renamed(self):
        assert baseline().renamed("foo").name == "foo"


class TestSimulationConfig:
    def test_total_cycles_default(self):
        cfg = SimulationConfig(warmup_cycles=100, measure_cycles=400)
        assert cfg.total_cycles == 500

    def test_total_cycles_capped(self):
        cfg = SimulationConfig(warmup_cycles=100, measure_cycles=400, max_cycles=300)
        assert cfg.total_cycles == 300

    def test_scaled(self):
        cfg = SimulationConfig(warmup_cycles=1000, measure_cycles=10_000).scaled(0.5)
        assert cfg.warmup_cycles == 500
        assert cfg.measure_cycles == 5_000
        cfg.validate()
