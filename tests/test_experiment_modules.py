"""Smoke tests for each experiment module at tiny scale.

Qualitative check outcomes are noisy at this scale, so these tests assert
the *machinery*: every module runs, produces the right table shape, and the
checks dict is populated. The full-scale check assertions live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core import PAPER_POLICIES
from repro.experiments import (
    ExperimentRunner,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table2a,
    table4,
)

TINY = SimulationConfig(warmup_cycles=150, measure_cycles=900, trace_length=4000, seed=77)


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        "baseline", TINY, cache_dir=tmp_path_factory.mktemp("expcache")
    )


class TestTable2a:
    def test_runs(self, runner):
        res = table2a.run(runner)
        assert len(res.rows) == 12
        assert res.headers[0] == "benchmark"
        assert len(res.checks) >= 36
        assert "Table 2(a)" in res.to_text()


class TestFigure1:
    def test_runs(self, runner):
        res = figure1.run(runner)
        # 12 workloads + 3 class-average rows... absolute rows hold the
        # throughput table: 12 workloads.
        assert len(res.rows) == 12
        assert set(res.headers[1:]) == set(PAPER_POLICIES)
        assert "matrix" in res.extra
        for wl, t in res.extra["matrix"].items():
            assert set(t) == set(PAPER_POLICIES)
            assert all(v > 0 for v in t.values()), wl

    def test_improvement_math(self, runner):
        res = figure1.run(runner)
        avgs = res.extra["class_avgs"]
        assert set(avgs) == {"icount", "stall", "flush", "dg", "pdg"}
        for other, by_class in avgs.items():
            assert set(by_class) == {"ILP", "MIX", "MEM"}


class TestFigure2:
    def test_runs(self, runner):
        res = figure2.run(runner)
        # 12 workload rows + 3 averages.
        assert len(res.rows) == 15
        assert set(res.extra["avg"]) == {"ILP", "MIX", "MEM"}
        assert all(v >= 0 for v in res.extra["avg"].values())


class TestFigure3:
    def test_runs(self, runner):
        res = figure3.run(runner)
        assert "matrix" in res.extra
        for wl, h in res.extra["matrix"].items():
            for pol, val in h.items():
                assert 0 <= val <= 2.0, (wl, pol, val)


class TestTable4:
    def test_runs(self, runner):
        res = table4.run(runner)
        assert len(res.rows) == len(PAPER_POLICIES)
        assert set(res.extra["hmeans"]) == set(PAPER_POLICIES)
        # relative IPCs present for all four 4-MIX threads
        for pol, rel in res.extra["relative"].items():
            assert set(rel) == {"gzip", "twolf", "bzip2", "mcf"}


@pytest.mark.slow
class TestSmallDeepMachines:
    def test_figure4_runs(self, runner):
        res = figure4.run(runner)
        # 6 workloads fit the 4-context machine.
        assert len(res.rows) == 6
        assert "throughput" in res.extra and "hmean" in res.extra

    def test_figure5_runs(self, runner):
        res = figure5.run(runner)
        assert len(res.rows) == 12
        assert res.extra["mem_flushed"] >= 0


class TestExtMetrics:
    def test_runs(self, runner):
        from repro.experiments import ext_metrics

        res = ext_metrics.run(runner)
        # 3 workloads x 6 policies.
        assert len(res.rows) == 18
        # ranks are permutations of 1..6 per workload and metric
        for wl in ("4-MIX", "8-MIX", "4-MEM"):
            ranks = [r[5] for r in res.rows if r[0] == wl]
            assert sorted(ranks) == [1, 2, 3, 4, 5, 6]
