"""Tests for the classic extension policies (RR, BRCOUNT, MISSCOUNT)."""

from __future__ import annotations

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.workloads import build_programs, get_workload

CFG = SimulationConfig(warmup_cycles=200, measure_cycles=2000, trace_length=8000, seed=17)


def sim_for(workload, policy):
    programs = build_programs(get_workload(workload), CFG)
    return Simulator(baseline(), programs, make_policy(policy), CFG)


class TestRoundRobin:
    def test_rotates_each_cycle(self):
        sim = sim_for("4-ILP", "rr")
        orders = set()
        for _ in range(4):
            orders.add(tuple(sim.policy.fetch_order()))
            sim.run_cycles(1)
        assert len(orders) == 4  # a different rotation every cycle

    def test_each_rotation_is_a_permutation(self):
        sim = sim_for("4-ILP", "rr")
        for _ in range(6):
            order = sim.policy.fetch_order()
            assert sorted(order) == [0, 1, 2, 3]
            sim.run_cycles(1)

    def test_runs_to_completion(self):
        res = sim_for("2-MIX", "rr").run()
        assert all(c > 0 for c in res.committed)


class TestBRCount:
    def test_prefers_least_speculative_thread(self):
        sim = sim_for("2-ILP", "brcount")
        sim.run_cycles(300)
        counts = sim.policy._count_unresolved()
        order = sim.policy.fetch_order()
        assert counts[order[0]] <= counts[order[-1]]

    def test_counts_match_pipeline_state(self):
        from repro.isa.opcodes import OpClass

        sim = sim_for("4-MIX", "brcount")
        sim.run_cycles(500)
        counts = sim.policy._count_unresolved()
        expected = [0] * 4
        for i in sim.pipe:
            if i.op == OpClass.BRANCH and not i.squashed:
                expected[i.tid] += 1
        for tc in sim.threads:
            for i in tc.rob:
                if i.op == OpClass.BRANCH and not i.completed:
                    expected[i.tid] += 1
        assert counts == expected

    def test_runs_to_completion(self):
        res = sim_for("2-MEM", "brcount").run()
        assert all(c > 0 for c in res.committed)


class TestMissCount:
    def test_sorts_by_dmiss_then_icount(self):
        sim = sim_for("4-MIX", "misscount")
        sim.threads[0].dmiss = 3
        sim.threads[1].dmiss = 0
        sim.threads[2].dmiss = 1
        sim.threads[3].dmiss = 0
        sim.threads[1].icount = 9
        sim.threads[3].icount = 2
        assert sim.policy.fetch_order() == [3, 1, 2, 0]

    def test_never_gates(self):
        sim = sim_for("2-MEM", "misscount")
        sim.run()
        # Every thread appears in every fetch order (priority-only policy).
        assert set(sim.policy.fetch_order()) == {0, 1}

    def test_runs_to_completion(self):
        res = sim_for("2-MEM", "misscount").run()
        assert all(c > 0 for c in res.committed)
