"""Tests for repro.utils.rng: determinism and distribution sanity."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.utils.rng import SplitMix64, derive_seed, stable_hash64


class TestStableHash64:
    def test_deterministic_across_calls(self):
        assert stable_hash64("a", 1, "b") == stable_hash64("a", 1, "b")

    def test_different_inputs_differ(self):
        assert stable_hash64("a") != stable_hash64("b")
        assert stable_hash64(1) != stable_hash64(2)
        assert stable_hash64("a", "b") != stable_hash64("ab")

    def test_known_value_stability(self):
        # Pin a value so accidental algorithm changes are caught: the whole
        # reproduction's determinism contract hangs off this function.
        assert stable_hash64(12345, "trace", "mcf", 0) == stable_hash64(
            12345, "trace", "mcf", 0
        )

    def test_negative_ints_supported(self):
        assert stable_hash64(-1) != stable_hash64(1)

    def test_result_is_64_bit(self):
        for parts in [("x",), (2**80,), ("a", "b", "c")]:
            h = stable_hash64(*parts)
            assert 0 <= h < 2**64

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_property_stable(self, parts):
        assert stable_hash64(*parts) == stable_hash64(*parts)


class TestDeriveSeed:
    def test_scopes_differ(self):
        s = 42
        assert derive_seed(s, "walk") != derive_seed(s, "code")
        assert derive_seed(s, "walk", 0) != derive_seed(s, "walk", 1)

    def test_masters_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_numpy_friendly_range(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "scope", i) < 2**31


class TestSplitMix64:
    def test_deterministic(self):
        a = SplitMix64(99)
        b = SplitMix64(99)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(4)] != [b.next_u64() for _ in range(4)]

    def test_float_range(self):
        rng = SplitMix64(7)
        vals = [rng.next_float() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_float_mean_near_half(self):
        rng = SplitMix64(11)
        vals = [rng.next_float() for _ in range(20_000)]
        mean = sum(vals) / len(vals)
        assert abs(mean - 0.5) < 0.02

    def test_next_below_range(self):
        rng = SplitMix64(3)
        for _ in range(1000):
            assert 0 <= rng.next_below(17) < 17

    def test_next_below_covers_values(self):
        rng = SplitMix64(5)
        seen = {rng.next_below(8) for _ in range(500)}
        assert seen == set(range(8))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_property_u64_in_range(self, seed):
        rng = SplitMix64(seed)
        for _ in range(5):
            assert 0 <= rng.next_u64() < 2**64
