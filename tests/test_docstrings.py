"""Documentation contract: every public item carries a docstring.

The deliverable spec requires doc comments on every public item; this test
enforces it structurally so the contract cannot silently rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        # Only report items defined in this package (not re-exported stdlib).
        mod = getattr(obj, "__module__", "")
        if isinstance(mod, str) and mod.startswith("repro"):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {sorted(set(missing))}"


def test_public_classes_document_their_public_methods():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (inspect.getdoc(meth) or "").strip():
                    missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"public methods without docstrings: {sorted(set(missing))}"
