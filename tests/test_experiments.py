"""Tests for the experiment harness (runner caching, result objects, CLI).

Experiment *content* at paper scale is exercised by the benchmarks; here we
verify the machinery on very small simulations.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.config import SimulationConfig
from repro.experiments import ExperimentRunner
from repro.experiments.runner import ExperimentResult


TINY = SimulationConfig(warmup_cycles=200, measure_cycles=1200, trace_length=5000, seed=21)


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner("baseline", TINY, cache_dir=tmp_path)


class TestRunnerCaching:
    def test_memory_cache(self, runner):
        r1 = runner.run("2-MIX", "icount")
        n = runner.simulations_run
        r2 = runner.run("2-MIX", "icount")
        assert runner.simulations_run == n
        assert r1 is r2

    def test_disk_cache_across_runners(self, runner, tmp_path):
        r1 = runner.run("2-MIX", "dwarn")
        fresh = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        r2 = fresh.run("2-MIX", "dwarn")
        assert fresh.simulations_run == 0
        assert r2.committed == r1.committed
        assert r2.benchmarks == r1.benchmarks

    def test_different_policies_not_conflated(self, runner):
        r1 = runner.run("2-MIX", "icount")
        r2 = runner.run("2-MIX", "flush")
        assert r1.policy != r2.policy

    def test_corrupt_disk_cache_recovers(self, runner, tmp_path):
        runner.run("2-MIX", "icount")
        for f in tmp_path.glob("*.json"):
            f.write_text("{not json")
        fresh = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        res = fresh.run("2-MIX", "icount")
        assert fresh.simulations_run == 1
        assert res.policy == "icount"

    def test_single_benchmark_runs(self, runner):
        res = runner.run_single("gzip")
        assert res.benchmarks == ("gzip",)
        assert res.ipc[0] > 0

    def test_alone_ipc_cached(self, runner):
        a = runner.alone_ipc("gzip")
        n = runner.simulations_run
        b = runner.alone_ipc("gzip")
        assert a == b and runner.simulations_run == n

    def test_fairness_report(self, runner):
        rep = runner.fairness("2-MIX", "dwarn")
        assert len(rep.relative) == 2
        assert 0 < rep.hmean <= max(rep.relative)

    def test_with_machine_switches(self, runner):
        small = runner.with_machine("small")
        assert small.machine.name == "small"
        res = small.run("2-MIX", "icount")
        assert res.machine == "small"


class TestExperimentResult:
    def make(self, checks=None):
        return ExperimentResult(
            name="x",
            title="Title",
            headers=["a", "b"],
            rows=[[1, 2]],
            notes=["hello"],
            checks=checks or {"works": True},
        )

    def test_to_text(self):
        text = self.make().to_text()
        assert "Title" in text and "[PASS] works" in text and "note: hello" in text

    def test_to_markdown(self):
        md = self.make().to_markdown()
        assert md.startswith("### Title")
        assert "| a" in md
        assert "**pass**" in md

    def test_all_checks_pass(self):
        assert self.make().all_checks_pass
        assert not self.make({"ok": True, "nope": False}).all_checks_pass
        assert "MISS" in self.make({"nope": False}).to_text()


class TestCLI:
    def test_parser_lists_experiments(self):
        parser = build_parser()
        for cmd in ("run", "compare", "report", "list", "table2a", "figure1"):
            assert cmd in parser.format_help()

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "4-MIX" in out and "dwarn" in out and "baseline" in out

    def test_run_command(self, capsys):
        rc = main([
            "--warmup", "200", "--cycles", "1000", "--trace-length", "5000",
            "run", "gzip", "--policy", "icount",
        ])
        assert rc == 0
        assert "gzip" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        rc = main([
            "--warmup", "100", "--cycles", "600", "--trace-length", "4000",
            "compare", "2-ILP",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dwarn" in out and "flush" in out


class TestCLIExperiment:
    def test_table2a_subcommand(self, capsys):
        rc = main([
            "--warmup", "100", "--cycles", "500", "--trace-length", "3000",
            "table2a",
        ])
        out = capsys.readouterr().out
        assert "Table 2(a)" in out
        assert rc in (0, 1)  # checks may miss at this tiny scale


class TestProfilingUtil:
    def test_cycles_per_second(self):
        from repro.utils.profiling import cycles_per_second

        cps = cycles_per_second("2-ILP", "icount", cycles=400)
        assert cps > 500

    def test_profile_simulation_output(self):
        from repro.utils.profiling import profile_simulation

        text = profile_simulation("2-ILP", "icount", cycles=300, top=5)
        assert "function calls" in text
