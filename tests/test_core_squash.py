"""Focused tests for squash machinery: mispredict recovery and FLUSH flushes.

These drive real simulations and then cross-examine the microarchitectural
state, because squash bugs (rename-map corruption, resource leaks, cursor
drift) are exactly the class of error that silently corrupts results.
"""

from __future__ import annotations


from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.workloads import build_programs, build_single, get_workload


CFG = SimulationConfig(warmup_cycles=0, measure_cycles=6000, trace_length=12_000, seed=31)


def fresh_sim(workload="2-MEM", policy="flush", simcfg=CFG):
    programs = (
        build_programs(get_workload(workload), simcfg)
        if "-" in workload
        else build_single(workload, simcfg)
    )
    return Simulator(baseline(), programs, make_policy(policy), simcfg)


def assert_invariants(sim):
    """Full resource-conservation audit — the simulator's built-in
    validator, which checks queues, registers, ICOUNT, pipe counts, ROB
    order and rename-map integrity."""
    sim.validate_state()


class TestMispredictRecovery:
    def test_invariants_hold_through_heavy_mispredicts(self):
        sim = fresh_sim("gzip", "icount")
        for _ in range(12):
            sim.run_cycles(500)
            assert_invariants(sim)
        assert sum(sim.stats.mispredicts) > 10  # the path was exercised

    def test_committed_stream_is_the_trace(self):
        """Architectural correctness: the committed instruction sequence must
        be exactly the trace's prefix, whatever speculation did in between."""
        sim = fresh_sim("twolf", "icount")
        committed_idx: list[int] = []
        orig_commit = sim._commit

        def spy_commit():
            before = [tc.committed for tc in sim.threads]
            heads = {
                tc.tid: [i.idx for i in tc.rob] for tc in sim.threads
            }
            orig_commit()
            for tc in sim.threads:
                if tc.tid == 0:
                    n = tc.committed - before[0]
                    committed_idx.extend(heads[0][:n])

        sim._commit = spy_commit
        sim.run_cycles(4000)
        # Thread 0's committed idx sequence must be 0, 1, 2, ... exactly.
        assert committed_idx == list(range(len(committed_idx)))
        assert len(committed_idx) > 500

    def test_wrongpath_instructions_never_commit(self):
        sim = fresh_sim("gzip", "icount")
        bad = []
        orig = sim._commit

        def check_commit():
            for tc in sim.threads:
                if tc.rob and tc.rob[0].completed and tc.rob[0].wrongpath:
                    bad.append(tc.rob[0])
            orig()

        sim._commit = check_commit
        sim.run_cycles(3000)
        assert not bad, "wrong-path instruction reached commit"

    def test_branch_history_restored(self):
        # After running with many mispredicts, prediction accuracy must stay
        # reasonable — corrupted history would crater it.
        sim = fresh_sim("gzip", "icount")
        sim.run_cycles(6000)
        t = 0
        branches = sim.stats.branches_resolved[t]
        misp = sim.stats.mispredicts[t]
        assert branches > 200
        assert misp / branches < 0.35


class TestFlushMachinery:
    def test_flush_rewinds_cursor(self):
        sim = fresh_sim("2-MEM", "flush")
        sim.run_cycles(4000)
        assert sum(sim.stats.flush_events) > 0
        assert_invariants(sim)

    def test_flushed_instructions_are_refetched(self):
        sim = fresh_sim("2-MEM", "flush")
        sim.run_cycles(6000)
        w = sim.stats.window()
        # fetched >= committed + squashed (every squashed instr was fetched;
        # flush-squashed ones get fetched again).
        for t in range(2):
            assert w["fetched"][t] >= w["committed"][t]
        assert sum(w["squashed_flush"]) > 0

    def test_flush_then_refetch_hits_warm_line(self):
        """After a flush, the offending load's line arrives anyway; when the
        squashed successors are refetched, re-executed loads to that line
        must hit (stateful caches, not pre-drawn outcomes)."""
        sim = fresh_sim("2-MEM", "flush")
        sim.run_cycles(8000)
        # The run exercises this continuously; the invariant audit plus
        # forward progress is the observable contract.
        assert all(tc.committed > 50 for tc in sim.threads)
        assert_invariants(sim)

    def test_stall_vs_flush_same_detection_different_action(self):
        stall_sim = fresh_sim("2-MEM", "stall")
        flush_sim = fresh_sim("2-MEM", "flush")
        stall_sim.run_cycles(6000)
        flush_sim.run_cycles(6000)
        assert sum(stall_sim.stats.squashed_flush) == 0
        assert sum(flush_sim.stats.squashed_flush) > 0
        # Both gate:
        assert sum(stall_sim.stats.gated_cycles) > 0
        assert sum(flush_sim.stats.gated_cycles) > 0

    def test_invariants_under_flush_mix(self):
        sim = fresh_sim("4-MEM", "flush")
        for _ in range(8):
            sim.run_cycles(600)
            assert_invariants(sim)


class TestDWarnCounters:
    def test_dmiss_returns_to_zero_when_drained(self):
        sim = fresh_sim("gzip", "dwarn")
        sim.run_cycles(3000)
        # Let all in-flight misses land: stop fetching by exhausting budget.
        # Easiest: run a long quiet period after clearing the pipe is not
        # possible from outside, so just assert non-negative and bounded.
        for tc in sim.threads:
            assert 0 <= tc.dmiss <= 64

    def test_dmiss_rises_on_mem_thread(self):
        sim = fresh_sim("2-MEM", "dwarn")
        seen_positive = False
        for _ in range(20):
            sim.run_cycles(100)
            if sim.threads[0].dmiss > 0:
                seen_positive = True
                break
        assert seen_positive, "mcf never registered an in-flight L1 miss"
