"""Sweep run manifest: record validation, summaries, JSON export, and the
integration with prefetch/run_pairs (memory/disk/simulated sources, retry
counts)."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SimulationConfig
from repro.experiments import ExperimentRunner, prefetch, run_pairs
from repro.experiments.parallel import _simulate_one
from repro.obs import PAIR_SOURCES, RunManifest

TINY = SimulationConfig(warmup_cycles=100, measure_cycles=700, trace_length=4000, seed=3)

_FLAKY_FLAG_ENV = "DWARN_TEST_MANIFEST_FLAKY_FLAG"


def _flaky_worker(machine, simcfg, workload, policy, trace_cache_dir=None):
    """Worker that raises once for 2-MIX/dwarn (flag-file gated), so the
    retry path runs and the manifest must record retries=1 for that pair."""
    flag = os.environ.get(_FLAKY_FLAG_ENV)
    if flag and os.path.exists(flag) and (workload, policy) == ("2-MIX", "dwarn"):
        os.remove(flag)
        raise RuntimeError("transient failure")
    return _simulate_one(machine, simcfg, workload, policy, trace_cache_dir)


class TestRunManifestUnit:
    def test_record_pair_validates_source(self):
        m = RunManifest()
        with pytest.raises(ValueError, match="not in"):
            m.record_pair("s", "2-MIX", "dwarn", "cosmic-rays", 1.0)

    def test_summary_rolls_up(self):
        m = RunManifest(label="test")
        m.record_pair("a", "2-MIX", "dwarn", "simulated", 2.0, retries=1)
        m.record_pair("a", "2-MIX", "icount", "disk", 0.5)
        m.record_pair("b", "2-MEM", "flush", "memory", 0.0, seed=9)
        m.pool_restarts = 2
        s = m.summary()
        assert s["pairs"] == 3
        assert s["by_source"] == {
            "memory": 1, "disk": 1, "simulated": 1, "store": 0, "worker": 0,
        }
        assert s["total_secs"] == pytest.approx(2.5)
        assert s["retries"] == 1
        assert s["pool_restarts"] == 2
        assert s["slowest"] == "2-MIX/dwarn (2.0s)"

    def test_empty_summary(self):
        s = RunManifest().summary()
        assert s["pairs"] == 0
        assert s["slowest"] is None
        assert set(s["by_source"]) == set(PAIR_SOURCES)

    def test_latency_percentiles(self):
        m = RunManifest()
        for i, secs in enumerate([0.1, 0.2, 0.3, 0.4, 1.0]):
            m.record_pair("s", "2-MIX", f"p{i}", "simulated", secs)
        lat = m.latency_percentiles()
        assert lat["p50"] == pytest.approx(0.3)
        assert lat["p95"] == pytest.approx(0.88)  # interpolated toward the tail
        assert lat["p95"] >= lat["p50"]

    def test_latency_percentiles_empty(self):
        assert RunManifest().latency_percentiles() == {"p50": 0.0, "p95": 0.0}

    def test_latency_percentiles_custom_qs(self):
        m = RunManifest()
        m.record_pair("s", "2-MIX", "dwarn", "memory", 2.0)
        assert m.latency_percentiles(qs=(0.0, 100.0)) == {"p0": 2.0, "p100": 2.0}

    def test_latency_percentiles_sweep_filter(self):
        """Per-shard latency splits: the load harness tags each record's
        sweep with the serving shard name and slices one manifest."""
        m = RunManifest(label="loadtest")
        for secs in (0.1, 0.2, 0.3):
            m.record_pair("s0", "2-MIX", "dwarn", "store", secs)
        for secs in (1.0, 2.0, 3.0):
            m.record_pair("s1", "2-MEM", "flush", "simulated", secs)
        assert m.latency_percentiles(sweep="s0")["p50"] == pytest.approx(0.2)
        assert m.latency_percentiles(sweep="s1")["p50"] == pytest.approx(2.0)
        # No filter = the fleet-wide distribution.
        assert m.latency_percentiles()["p50"] == pytest.approx(0.65)
        # An unknown label is an empty sample, not an error.
        assert m.latency_percentiles(sweep="s9") == {"p50": 0.0, "p95": 0.0}

    def test_merge_folds_pairs_and_restarts(self):
        a = RunManifest(label="service")
        a.record_pair("a", "2-MIX", "dwarn", "simulated", 1.0)
        a.pool_restarts = 1
        b = RunManifest(label="batch")
        b.record_pair("b", "2-MEM", "flush", "disk", 0.5, retries=1)
        b.pool_restarts = 2
        a.merge(b)
        s = a.summary()
        assert s["pairs"] == 2
        assert s["pool_restarts"] == 3
        assert s["retries"] == 1
        assert s["by_source"]["simulated"] == 1 and s["by_source"]["disk"] == 1
        # The source manifest is untouched.
        assert b.summary()["pairs"] == 1 and b.pool_restarts == 2

    def test_render_mentions_counts(self):
        m = RunManifest(label="sweepy")
        m.record_pair("a", "2-MIX", "dwarn", "simulated", 1.25)
        text = m.render()
        assert "sweepy" in text and "1 simulated" in text and "slowest" in text

    def test_write_json(self, tmp_path):
        m = RunManifest(label="x")
        m.record_pair("a", "2-MIX", "dwarn", "simulated", 1.0, seed=3)
        m.extras["report"] = "EXPERIMENTS.md"
        path = m.write_json(tmp_path / "sub" / "manifest.json")
        data = json.loads(path.read_text())
        assert data["summary"]["pairs"] == 1
        assert data["pairs"][0]["workload"] == "2-MIX"
        assert data["pairs"][0]["seed"] == 3
        assert data["extras"] == {"report": "EXPERIMENTS.md"}


class TestSweepIntegration:
    def test_prefetch_records_all_three_sources(self, tmp_path):
        pairs = [("2-MIX", "icount"), ("2-MIX", "dwarn")]

        # Cold: everything is simulated.
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        m_cold = RunManifest()
        prefetch(runner, pairs, processes=1, manifest=m_cold, sweep="cold")
        assert m_cold.summary()["by_source"] == {
            "memory": 0, "disk": 0, "simulated": 2, "store": 0, "worker": 0,
        }
        assert all(p.sweep == "cold" and p.seed == TINY.seed for p in m_cold.pairs)
        assert all(p.secs > 0 for p in m_cold.pairs if p.source == "simulated")

        # Same runner again: memory hits.
        m_mem = RunManifest()
        prefetch(runner, pairs, processes=1, manifest=m_mem)
        assert m_mem.summary()["by_source"] == {
            "memory": 2, "disk": 0, "simulated": 0, "store": 0, "worker": 0,
        }

        # Fresh runner, same cache dir: disk hits.
        fresh = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        m_disk = RunManifest()
        prefetch(fresh, pairs, processes=1, manifest=m_disk)
        assert m_disk.summary()["by_source"] == {
            "memory": 0, "disk": 2, "simulated": 0, "store": 0, "worker": 0,
        }

    def test_run_pairs_records_retries(self, tmp_path, monkeypatch):
        flag = tmp_path / "flaky"
        flag.write_text("armed")
        monkeypatch.setenv(_FLAKY_FLAG_ENV, str(flag))
        runner = ExperimentRunner("baseline", TINY)
        manifest = RunManifest()
        out = run_pairs(
            runner.machine,
            TINY,
            [("2-MIX", "dwarn"), ("2-MIX", "icount")],
            processes=1,
            worker=_flaky_worker,
            manifest=manifest,
            sweep="flaky",
            seed=TINY.seed,
        )
        assert len(out) == 2
        by_pair = {(p.workload, p.policy): p for p in manifest.pairs}
        assert by_pair[("2-MIX", "dwarn")].retries == 1
        assert by_pair[("2-MIX", "icount")].retries == 0
        assert manifest.summary()["retries"] == 1

    def test_manifest_is_optional(self):
        runner = ExperimentRunner("baseline", TINY)
        out = run_pairs(
            runner.machine, TINY, [("2-MIX", "icount")], processes=1
        )
        assert len(out) == 1
