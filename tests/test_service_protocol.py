"""Job-spec canonicalization, validation, and lifecycle records.

The dedup/coalescing satellite lives here: identical specs spelled with
differently-ordered keys (or with defaults made explicit) must produce the
same canonical JSON and the same cache key — that identity is what the
queue coalesces on and what the result store is keyed by.

The property-based half (hypothesis) fuzzes every parser that faces client
or worker input — ``JobSpec.from_dict``, ``LeaseRequest.from_dict``,
``parse_result_upload``, ``result_from_payload``, and the server's
``_route`` dispatch itself — pinning the protocol's one security-relevant
invariant: malformed input yields :class:`SpecError` (HTTP 4xx), never any
other exception, never a 5xx.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.service.protocol import (
    MAX_LEASE_JOBS,
    Job,
    JobResult,
    JobSpec,
    JobState,
    LeaseRequest,
    SpecError,
    parse_result_upload,
    result_from_payload,
)


class TestCanonicalization:
    def test_key_order_irrelevant(self):
        """The satellite's core claim: reordered JSON keys, same cache key."""
        a = JobSpec.from_dict(
            {"workload": "2-MIX", "policy": "dwarn", "seed": 99, "machine": "small"}
        )
        b = JobSpec.from_dict(
            {"machine": "small", "seed": 99, "policy": "dwarn", "workload": "2-MIX"}
        )
        assert a == b
        assert a.canonical_json() == b.canonical_json()
        assert a.cache_key() == b.cache_key()

    def test_defaults_explicit_vs_omitted(self):
        """Spelling out a default field changes nothing."""
        a = JobSpec.from_dict({"workload": "4-ILP", "policy": "icount"})
        b = JobSpec.from_dict(
            {
                "workload": "4-ILP",
                "policy": "icount",
                "machine": "baseline",
                "seed": 12345,
                "warmup_cycles": 5_000,
                "measure_cycles": 40_000,
                "trace_length": 60_000,
            }
        )
        assert a.cache_key() == b.cache_key()

    def test_canonical_json_is_sorted_and_compact(self):
        spec = JobSpec.from_dict({"workload": "2-MEM", "policy": "flush"})
        text = spec.canonical_json()
        assert " " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_different_specs_different_keys(self):
        base = {"workload": "2-MIX", "policy": "dwarn"}
        k0 = JobSpec.from_dict(base).cache_key()
        for delta in (
            {"policy": "icount"},
            {"workload": "2-MEM"},
            {"seed": 1},
            {"machine": "deep"},
            {"measure_cycles": 10_000},
            {"trace_length": 30_000},
            {"warmup_cycles": 1},
        ):
            other = JobSpec.from_dict({**base, **delta})
            assert other.cache_key() != k0, delta

    def test_cache_key_stable_across_processes(self):
        """Keys must be reproducible (stable_hash64, not PYTHONHASHSEED)."""
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        assert spec.cache_key() == "1ae3020cf63f3c19"

    def test_group_key_batches_config_not_pair(self):
        a = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        b = JobSpec.from_dict({"workload": "8-MEM", "policy": "flush"})
        c = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": 1})
        assert a.group_key() == b.group_key()
        assert a.group_key() != c.group_key()


class TestValidation:
    def test_required_fields(self):
        with pytest.raises(SpecError, match="workload"):
            JobSpec.from_dict({"policy": "dwarn"})
        with pytest.raises(SpecError, match="policy"):
            JobSpec.from_dict({"workload": "2-MIX"})

    def test_unknown_field_rejected(self):
        """A typo must fail loudly, not silently run the default config."""
        with pytest.raises(SpecError, match="polcy"):
            JobSpec.from_dict({"workload": "2-MIX", "polcy": "dwarn", "policy": "dwarn"})

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="object"):
            JobSpec.from_dict(["workload", "policy"])  # type: ignore[arg-type]

    def test_type_checks(self):
        with pytest.raises(SpecError, match="seed"):
            JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": "7"})
        with pytest.raises(SpecError, match="seed"):
            JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": True})

    def test_bounds(self):
        with pytest.raises(SpecError, match="measure_cycles"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "measure_cycles": 0}
            )
        with pytest.raises(SpecError, match="measure_cycles"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "measure_cycles": 10**9}
            )
        with pytest.raises(SpecError, match="machine"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "machine": "mega"}
            )
        with pytest.raises(SpecError, match="warmup"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "warmup_cycles": -1}
            )


class TestConfigMaterialization:
    def test_sim_config_round_trip(self):
        spec = JobSpec.from_dict(
            {
                "workload": "2-MIX",
                "policy": "dwarn",
                "seed": 42,
                "warmup_cycles": 100,
                "measure_cycles": 700,
                "trace_length": 4_000,
            }
        )
        cfg = spec.sim_config()
        assert cfg == SimulationConfig(
            warmup_cycles=100, measure_cycles=700, trace_length=4_000, seed=42
        )
        assert spec.machine_config().name == "baseline"


class TestJob:
    def test_status_dict_shape(self):
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        job = Job(id="abc123", spec=spec, priority=2)
        st = job.status_dict()
        assert st["id"] == "abc123"
        assert st["state"] == JobState.QUEUED
        assert st["key"] == spec.cache_key()
        assert st["spec"]["workload"] == "2-MIX"
        assert st["priority"] == 2
        assert job.latency is None

    def test_latency_once_terminal(self):
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        job = Job(id="x", spec=spec, submitted_at=10.0)
        job.finished_at = 12.5
        assert job.latency == pytest.approx(2.5)


# ----------------------------------------------------------------------
# Property-based fuzzing: malformed input -> SpecError/4xx, never a traceback


def _json_values(max_leaves: int = 10):
    """Arbitrary JSON-compatible values (what any client can actually send)."""
    scalars = (
        st.none()
        | st.booleans()
        | st.integers(-(10**9), 10**9)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=20)
    )
    return st.recursive(
        scalars,
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=10), children, max_size=4),
        max_leaves=max_leaves,
    )


SPEC_FIELDS = [f.name for f in dataclasses.fields(JobSpec)]


class TestSpecFuzz:
    @given(data=_json_values())
    def test_arbitrary_json_never_escapes_specerror(self, data):
        """Any JSON value either parses or raises SpecError — nothing else."""
        try:
            JobSpec.from_dict(data)
        except SpecError:
            pass

    @given(
        data=st.dictionaries(
            st.sampled_from(SPEC_FIELDS) | st.text(max_size=12),
            _json_values(max_leaves=4),
            max_size=8,
        )
    )
    def test_plausible_dicts_accepted_specs_round_trip(self, data):
        """Near-miss dicts (real field names, junk values): anything that
        *is* accepted must survive the canonical round trip key-stably."""
        try:
            spec = JobSpec.from_dict(data)
        except SpecError:
            return
        again = JobSpec.from_dict(json.loads(spec.canonical_json()))
        assert again == spec
        assert again.cache_key() == spec.cache_key()


class TestLeaseMessageFuzz:
    @given(
        worker=st.text(min_size=1, max_size=120).filter(lambda s: s.strip()),
        capacity=st.integers(1, MAX_LEASE_JOBS),
    )
    def test_lease_request_round_trip(self, worker, capacity):
        req = LeaseRequest.from_dict({"worker": worker, "capacity": capacity})
        assert LeaseRequest.from_dict(req.to_dict()) == req

    @given(data=_json_values())
    def test_lease_request_fuzz(self, data):
        try:
            LeaseRequest.from_dict(data)
        except SpecError:
            pass

    @given(data=_json_values())
    def test_result_upload_fuzz(self, data):
        try:
            parse_result_upload(data)
        except SpecError:
            pass

    @given(
        entries=st.lists(
            st.dictionaries(
                st.sampled_from(["job_id", "ok", "result", "error", "secs", "retries"])
                | st.text(max_size=8),
                _json_values(max_leaves=4),
                max_size=6,
            ),
            max_size=4,
        )
    )
    def test_result_upload_near_miss_entries(self, entries):
        """Entry-shaped garbage: accepted uploads must yield JobResults
        whose invariants (ok xor error, finite secs) actually hold."""
        try:
            parsed = parse_result_upload({"results": entries})
        except SpecError:
            return
        assert len(parsed) == len(entries)
        for r in parsed:
            assert isinstance(r, JobResult)
            assert (r.result is None) or r.ok
            assert (r.error is None) or not r.ok
            assert r.secs >= 0.0

    def test_valid_upload_parses(self):
        parsed = parse_result_upload(
            {
                "results": [
                    {"job_id": "a", "ok": False, "error": "boom"},
                    {"job_id": "b", "ok": True, "result": {}, "secs": 1.5, "retries": 1},
                ]
            }
        )
        assert [r.job_id for r in parsed] == ["a", "b"]
        assert parsed[0].error == "boom" and parsed[1].secs == 1.5

    @given(data=_json_values())
    def test_result_payload_fuzz(self, data):
        """Worker uploads cross a trust boundary: junk must never build a
        SimResult (or poison a cache) — it raises SpecError instead."""
        try:
            result_from_payload(data)
        except SpecError:
            pass


class TestRouteFuzz:
    """Fuzz the server's dispatch directly: whatever arrives, the answer is
    a well-formed (status < 500, JSON-serializable) response — the contract
    the chaos tests rely on when they fling faults at a live daemon."""

    @given(
        method=st.sampled_from(["GET", "POST", "PUT", "DELETE", "HEAD"]),
        path=st.one_of(
            st.sampled_from(
                [
                    "/",
                    "/healthz",
                    "/metrics",
                    "/v1/jobs",
                    "/v1/jobs/zzz",
                    "/v1/results/zzz",
                    "/v1/leases",
                    "/v1/leases/x/heartbeat",
                    "/v1/leases/x/result",
                    "/v1/leases//",
                ]
            ),
            st.text(max_size=30).map(lambda s: "/" + s),
        ),
        body=st.one_of(
            st.binary(max_size=200),
            _json_values(max_leaves=6).map(lambda v: json.dumps(v).encode("utf-8")),
        ),
    )
    def test_route_never_5xx_never_raises(self, method, path, body):
        from repro.service.server import ServiceConfig, SimulationService

        svc = SimulationService(ServiceConfig())
        status, payload, headers = svc._route(method, path, body)
        assert 200 <= status < 500, (method, path, body, payload)
        assert isinstance(payload, dict)
        json.dumps(payload)  # must be serializable back to the client
        assert isinstance(headers, dict)
