"""Job-spec canonicalization, validation, and lifecycle records.

The dedup/coalescing satellite lives here: identical specs spelled with
differently-ordered keys (or with defaults made explicit) must produce the
same canonical JSON and the same cache key — that identity is what the
queue coalesces on and what the result store is keyed by.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.service.protocol import Job, JobSpec, JobState, SpecError


class TestCanonicalization:
    def test_key_order_irrelevant(self):
        """The satellite's core claim: reordered JSON keys, same cache key."""
        a = JobSpec.from_dict(
            {"workload": "2-MIX", "policy": "dwarn", "seed": 99, "machine": "small"}
        )
        b = JobSpec.from_dict(
            {"machine": "small", "seed": 99, "policy": "dwarn", "workload": "2-MIX"}
        )
        assert a == b
        assert a.canonical_json() == b.canonical_json()
        assert a.cache_key() == b.cache_key()

    def test_defaults_explicit_vs_omitted(self):
        """Spelling out a default field changes nothing."""
        a = JobSpec.from_dict({"workload": "4-ILP", "policy": "icount"})
        b = JobSpec.from_dict(
            {
                "workload": "4-ILP",
                "policy": "icount",
                "machine": "baseline",
                "seed": 12345,
                "warmup_cycles": 5_000,
                "measure_cycles": 40_000,
                "trace_length": 60_000,
            }
        )
        assert a.cache_key() == b.cache_key()

    def test_canonical_json_is_sorted_and_compact(self):
        spec = JobSpec.from_dict({"workload": "2-MEM", "policy": "flush"})
        text = spec.canonical_json()
        assert " " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_different_specs_different_keys(self):
        base = {"workload": "2-MIX", "policy": "dwarn"}
        k0 = JobSpec.from_dict(base).cache_key()
        for delta in (
            {"policy": "icount"},
            {"workload": "2-MEM"},
            {"seed": 1},
            {"machine": "deep"},
            {"measure_cycles": 10_000},
            {"trace_length": 30_000},
            {"warmup_cycles": 1},
        ):
            other = JobSpec.from_dict({**base, **delta})
            assert other.cache_key() != k0, delta

    def test_cache_key_stable_across_processes(self):
        """Keys must be reproducible (stable_hash64, not PYTHONHASHSEED)."""
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        assert spec.cache_key() == "1ae3020cf63f3c19"

    def test_group_key_batches_config_not_pair(self):
        a = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        b = JobSpec.from_dict({"workload": "8-MEM", "policy": "flush"})
        c = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": 1})
        assert a.group_key() == b.group_key()
        assert a.group_key() != c.group_key()


class TestValidation:
    def test_required_fields(self):
        with pytest.raises(SpecError, match="workload"):
            JobSpec.from_dict({"policy": "dwarn"})
        with pytest.raises(SpecError, match="policy"):
            JobSpec.from_dict({"workload": "2-MIX"})

    def test_unknown_field_rejected(self):
        """A typo must fail loudly, not silently run the default config."""
        with pytest.raises(SpecError, match="polcy"):
            JobSpec.from_dict({"workload": "2-MIX", "polcy": "dwarn", "policy": "dwarn"})

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="object"):
            JobSpec.from_dict(["workload", "policy"])  # type: ignore[arg-type]

    def test_type_checks(self):
        with pytest.raises(SpecError, match="seed"):
            JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": "7"})
        with pytest.raises(SpecError, match="seed"):
            JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn", "seed": True})

    def test_bounds(self):
        with pytest.raises(SpecError, match="measure_cycles"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "measure_cycles": 0}
            )
        with pytest.raises(SpecError, match="measure_cycles"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "measure_cycles": 10**9}
            )
        with pytest.raises(SpecError, match="machine"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "machine": "mega"}
            )
        with pytest.raises(SpecError, match="warmup"):
            JobSpec.from_dict(
                {"workload": "2-MIX", "policy": "dwarn", "warmup_cycles": -1}
            )


class TestConfigMaterialization:
    def test_sim_config_round_trip(self):
        spec = JobSpec.from_dict(
            {
                "workload": "2-MIX",
                "policy": "dwarn",
                "seed": 42,
                "warmup_cycles": 100,
                "measure_cycles": 700,
                "trace_length": 4_000,
            }
        )
        cfg = spec.sim_config()
        assert cfg == SimulationConfig(
            warmup_cycles=100, measure_cycles=700, trace_length=4_000, seed=42
        )
        assert spec.machine_config().name == "baseline"


class TestJob:
    def test_status_dict_shape(self):
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        job = Job(id="abc123", spec=spec, priority=2)
        st = job.status_dict()
        assert st["id"] == "abc123"
        assert st["state"] == JobState.QUEUED
        assert st["key"] == spec.cache_key()
        assert st["spec"]["workload"] == "2-MIX"
        assert st["priority"] == 2
        assert job.latency is None

    def test_latency_once_terminal(self):
        spec = JobSpec.from_dict({"workload": "2-MIX", "policy": "dwarn"})
        job = Job(id="x", spec=spec, submitted_at=10.0)
        job.finished_at = 12.5
        assert job.latency == pytest.approx(2.5)
