"""Tests for the ISA model: op classes, registers, DynInstr lifecycle fields."""

from __future__ import annotations

import pytest

from repro.isa import (
    NUM_ARCH_REGS,
    NUM_INT_ARCH_REGS,
    REG_NONE,
    BranchKind,
    DynInstr,
    OpClass,
    QUEUE_FP,
    QUEUE_INT,
    QUEUE_LS,
    QUEUE_OF,
    fp_reg,
    int_reg,
    is_fp_reg,
)


class TestQueueMapping:
    def test_int_ops_use_int_queue(self):
        assert QUEUE_OF[OpClass.INT] == QUEUE_INT
        assert QUEUE_OF[OpClass.BRANCH] == QUEUE_INT

    def test_memory_ops_use_ls_queue(self):
        assert QUEUE_OF[OpClass.LOAD] == QUEUE_LS
        assert QUEUE_OF[OpClass.STORE] == QUEUE_LS

    def test_fp_queue(self):
        assert QUEUE_OF[OpClass.FP] == QUEUE_FP

    def test_covers_all_opclasses(self):
        assert len(QUEUE_OF) == len(OpClass)


class TestRegisters:
    def test_flat_layout(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31
        assert fp_reg(0) == NUM_INT_ARCH_REGS
        assert fp_reg(31) == NUM_ARCH_REGS - 1

    def test_is_fp_reg(self):
        assert not is_fp_reg(int_reg(5))
        assert is_fp_reg(fp_reg(5))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)


class TestDynInstr:
    def make(self, **kw):
        defaults = dict(
            tid=0, seq=1, idx=2, op=int(OpClass.LOAD), pc=0x1000, dest=3,
            src1=4, src2=REG_NONE, addr=0xABC0, brkind=int(BranchKind.NONE),
        )
        defaults.update(kw)
        return DynInstr(**defaults)

    def test_initial_state(self):
        i = self.make()
        assert not i.dispatched and not i.issued and not i.completed
        assert not i.squashed and not i.wrongpath and not i.mispredicted
        assert i.num_wait == 0
        assert not i.dependents  # lazily allocated: None until first waiter
        assert i.fill_cycle == -1

    def test_class_predicates(self):
        assert self.make(op=int(OpClass.LOAD)).is_load
        assert self.make(op=int(OpClass.STORE)).is_store
        assert self.make(op=int(OpClass.BRANCH), brkind=int(BranchKind.COND)).is_branch
        assert self.make(op=int(OpClass.LOAD)).is_mem
        assert self.make(op=int(OpClass.STORE)).is_mem
        assert not self.make(op=int(OpClass.INT)).is_mem

    def test_slots_reject_adhoc_attributes(self):
        i = self.make()
        with pytest.raises(AttributeError):
            i.not_a_field = 1  # __slots__ is load-bearing for sim speed

    def test_repr_mentions_state(self):
        i = self.make()
        i.dispatched = True
        assert "D" in repr(i)
