"""Columnar snapshot round-trips: a mid-run simulator serialized, restored
into a fresh instance, and resumed must be bit-identical to one that never
paused.

``ColumnarState.capture`` flattens the live object graph (in-flight
DynInstrs, ROBs, ready heaps, event wheel, rename maps, caches, predictors)
into typed columns; ``restore_into`` re-inflates it onto a fresh simulator
built from the same ``(machine, programs, policy, simcfg)``. ``to_bytes`` /
``from_bytes`` add the on-disk codec (magic/version/CRC header, JSON
structural section, packed columns). These tests pin all three layers at
several pause points, across policies, and through both engines — plus the
codec's failure modes (corruption, truncation, closures in the wheel).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.columnar import SNAPSHOT_VERSION, ColumnarState, SnapshotError
from repro.workloads import build_programs, get_workload

POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")


def _simcfg(**kw) -> SimulationConfig:
    base = dict(warmup_cycles=0, measure_cycles=400, trace_length=3_000, seed=2024)
    base.update(kw)
    return SimulationConfig(**base)


def _fresh_sim(workload: str, policy: str, simcfg: SimulationConfig) -> Simulator:
    programs = build_programs(get_workload(workload), simcfg)
    return Simulator(baseline(), programs, make_policy(policy), simcfg)


def _assert_same_outcome(a: Simulator, b: Simulator) -> None:
    assert a.result() == b.result()
    assert a.cycle == b.cycle
    assert list(a.stats.committed) == list(b.stats.committed)
    assert list(a.stats.fetched) == list(b.stats.fetched)
    assert list(a.stats.gated_cycles) == list(b.stats.gated_cycles)
    assert list(a.stats.mispredicts) == list(b.stats.mispredicts)


def _run_interrupted(
    workload: str,
    policy: str,
    simcfg: SimulationConfig,
    pause_at: int,
    total: int,
    *,
    through_bytes: bool = False,
    staged_resume: bool = False,
) -> Simulator:
    """Run to ``pause_at``, snapshot, restore into a fresh sim, finish."""
    sim = _fresh_sim(workload, policy, simcfg)
    sim._begin_window()
    sim.run_cycles(pause_at)
    state = ColumnarState.capture(sim)
    if through_bytes:
        state = ColumnarState.from_bytes(state.to_bytes())
    resumed = _fresh_sim(workload, policy, simcfg)
    state.restore_into(resumed)
    if staged_resume:
        resumed._step = resumed._step  # pin => staged reference path
        assert not resumed._fast_eligible()
    resumed.run_cycles(total - pause_at)
    resumed.validate_state()
    return resumed


@pytest.mark.parametrize("policy", POLICIES)
def test_midrun_roundtrip_matches_uninterrupted(policy):
    simcfg = _simcfg()
    straight = _fresh_sim("2-MEM", policy, simcfg)
    straight._begin_window()
    straight.run_cycles(400)
    resumed = _run_interrupted("2-MEM", policy, simcfg, pause_at=170, total=400)
    _assert_same_outcome(straight, resumed)


@pytest.mark.parametrize("pause_at", [1, 64, 199, 399])
def test_roundtrip_at_varied_pause_points(pause_at):
    """Odd pause points land mid-flight in every structure: the wheel holds
    pending completes/fills, heaps hold ready work, ROBs are partly full."""
    simcfg = _simcfg()
    straight = _fresh_sim("4-MIX", "dwarn", simcfg)
    straight._begin_window()
    straight.run_cycles(400)
    resumed = _run_interrupted("4-MIX", "dwarn", simcfg, pause_at=pause_at, total=400)
    _assert_same_outcome(straight, resumed)


def test_bytes_codec_roundtrip_matches_uninterrupted():
    """Serialize -> bytes -> deserialize -> restore -> resume: the full
    ship-it path, and the serialized form itself is deterministic."""
    simcfg = _simcfg()
    straight = _fresh_sim("2-MEM", "pdg", simcfg)
    straight._begin_window()
    straight.run_cycles(400)
    resumed = _run_interrupted(
        "2-MEM", "pdg", simcfg, pause_at=170, total=400, through_bytes=True
    )
    _assert_same_outcome(straight, resumed)

    sim = _fresh_sim("2-MEM", "pdg", simcfg)
    sim._begin_window()
    sim.run_cycles(170)
    blob = ColumnarState.capture(sim).to_bytes()
    assert ColumnarState.capture(sim).to_bytes() == blob  # stable encoding
    assert blob[:4] == b"DWCS"


def test_resume_on_staged_engine_matches_fused():
    """A snapshot taken under the fused engine restores onto the staged
    reference path and still finishes bit-identically (state is engine-
    agnostic, as the fused/staged parity suite requires)."""
    simcfg = _simcfg()
    straight = _fresh_sim("2-MEM", "dg", simcfg)
    straight._begin_window()
    straight.run_cycles(400)
    resumed = _run_interrupted(
        "2-MEM", "dg", simcfg, pause_at=170, total=400, staged_resume=True
    )
    _assert_same_outcome(straight, resumed)


def test_snapshot_version_constant():
    # v2: policy-bound EV_CALL markers + meta-policy state (checkpoint PR).
    assert SNAPSHOT_VERSION == 2


def test_corrupt_payload_raises_snapshot_error():
    simcfg = _simcfg()
    sim = _fresh_sim("2-MEM", "icount", simcfg)
    sim._begin_window()
    sim.run_cycles(100)
    blob = bytearray(ColumnarState.capture(sim).to_bytes())
    blob[-1] ^= 0xFF  # flip one payload byte -> CRC mismatch
    with pytest.raises(SnapshotError):
        ColumnarState.from_bytes(bytes(blob))


def test_truncated_and_bad_magic_raise_snapshot_error():
    simcfg = _simcfg()
    sim = _fresh_sim("2-MEM", "icount", simcfg)
    sim._begin_window()
    sim.run_cycles(100)
    blob = ColumnarState.capture(sim).to_bytes()
    with pytest.raises(SnapshotError):
        ColumnarState.from_bytes(blob[: len(blob) // 2])
    with pytest.raises(SnapshotError):
        ColumnarState.from_bytes(b"XXXX" + blob[4:])


def test_ev_call_closure_in_wheel_is_not_serializable():
    """External ``schedule_call`` closures are code, not data: capture must
    refuse rather than silently drop the pending callback."""
    simcfg = _simcfg()
    sim = _fresh_sim("2-MEM", "icount", simcfg)
    sim._begin_window()
    sim.run_cycles(50)
    sim.schedule_call(sim.cycle + 10, lambda: None)
    with pytest.raises(SnapshotError):
        ColumnarState.capture(sim)
