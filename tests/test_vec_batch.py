"""The vectorized batch backend is cycle-exact and wiring-correct.

``repro.core.vec`` advances many (workload, policy, seed) lanes in lockstep
through one process. Its contract is *bit-identity*: every lane's
``SimResult`` equals the one ``Simulator.run()`` would produce for that run
alone — across policies, thread mixes, per-lane seeds, pre-warm template
cloning, commit-limit early exit, and with or without numpy (the control
plane falls back to pure Python). A hypothesis sweep fuzzes the batch
against the *staged* reference engine, crossing both the lockstep driver
and the fused/staged boundary in one property.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.vec import Lane, VecBatchSimulator, VecLaneError, run_batch
from repro.core.vec import batch as vecbatch
from repro.experiments.parallel import run_pairs
from repro.workloads import build_programs, build_single, get_workload

SIX_POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")


def _simcfg(**kw) -> SimulationConfig:
    base = dict(warmup_cycles=60, measure_cycles=240, trace_length=3_000, seed=424242)
    base.update(kw)
    return SimulationConfig(**base)


def _serial_result(workload: str, policy: str, simcfg: SimulationConfig, *, staged=False):
    """The per-run reference: one Simulator, the public run() loop."""
    try:
        programs = build_programs(get_workload(workload), simcfg)
    except KeyError:
        programs = build_single(workload, simcfg)
    sim = Simulator(baseline(), programs, make_policy(policy), simcfg)
    if staged:
        sim._step = sim._step
        assert not sim._fast_eligible()
    return sim.run()


def test_batch_matches_serial_across_policies():
    """Six policies x two thread mixes in one batch: the canonical screening
    shape (shared trace walks, shared pre-warm template per group)."""
    simcfg = _simcfg()
    lanes = [(wl, pol) for wl in ("2-MEM", "4-MIX") for pol in SIX_POLICIES]
    results = run_batch(baseline(), simcfg, lanes)
    assert len(results) == len(lanes)
    for (wl, pol), got in zip(lanes, results):
        assert got == _serial_result(wl, pol, simcfg), f"{wl}/{pol} diverged"


def test_batch_matches_serial_with_mixed_seeds_and_lone_benchmark():
    """Per-lane seeds split lanes into different setup groups; a lone
    benchmark name (not a workload) takes the build_single path; duplicate
    lanes must not alias each other's state."""
    simcfg = _simcfg()
    lanes = [
        Lane("2-MEM", "dwarn"),
        Lane("2-MEM", "dwarn", seed=7),
        Lane("mcf", "icount"),
        Lane("2-MEM", "dwarn"),
    ]
    results = run_batch(baseline(), simcfg, lanes)
    for lane, got in zip(lanes, results):
        cfg = simcfg if lane.seed is None else dataclasses.replace(simcfg, seed=lane.seed)
        assert got == _serial_result(lane.workload, lane.policy, cfg), lane
    assert results[0] == results[3]  # duplicates agree
    assert results[0] != results[1]  # reseeded lane actually differs


def test_batch_matches_serial_with_commit_limit():
    """Early exit: the 64-cycle-aligned checkpoint logic must fire on the
    same cycle for a batched lane as for the lone run."""
    simcfg = _simcfg(commit_limit=120)
    lanes = [("2-MEM", pol) for pol in SIX_POLICIES]
    results = run_batch(baseline(), simcfg, lanes)
    for (wl, pol), got in zip(lanes, results):
        assert got == _serial_result(wl, pol, simcfg), f"{wl}/{pol} diverged"
    # The limit actually bit: lanes finished before the full window.
    assert any(res.cycles < simcfg.total_cycles for res in results)


def test_pure_python_fallback_matches_numpy_path(monkeypatch):
    """With the numpy control plane disabled the backend must produce the
    same results (the no-numpy CI leg runs this for real)."""
    simcfg = _simcfg(commit_limit=120)
    lanes = [("2-MEM", "icount"), ("2-MEM", "dwarn"), ("4-MIX", "pdg")]
    with_np = run_batch(baseline(), simcfg, lanes)
    monkeypatch.setattr(vecbatch, "_np", None)
    without_np = run_batch(baseline(), simcfg, lanes)
    assert with_np == without_np


def test_chunk_size_is_behavior_neutral():
    simcfg = _simcfg()
    lanes = [("4-MIX", "dwarn"), ("4-MIX", "flush")]
    coarse = run_batch(baseline(), simcfg, lanes, chunk=4096)
    fine = run_batch(baseline(), simcfg, lanes, chunk=64)
    assert coarse == fine


def test_progress_callback_and_timing_attribution():
    simcfg = _simcfg()
    lanes = [("2-MEM", "icount"), ("2-MEM", "stall")]
    seen = []
    batch = VecBatchSimulator(
        baseline(), simcfg, lanes, progress=lambda done, total, cyc: seen.append((done, total))
    )
    batch.run()
    assert seen == [(1, 2), (2, 2)]
    assert len(batch.lane_seconds) == 2
    assert all(s >= 0.0 for s in batch.lane_seconds)
    assert batch.batch_seconds > 0.0
    # run() is idempotent: the cached results come back, no re-simulation.
    again = batch.run()
    assert again is batch.results


def test_ipc_matrix_shape_and_padding():
    simcfg = _simcfg()
    batch = VecBatchSimulator(baseline(), simcfg, [("2-MEM", "icount"), ("4-MIX", "icount")])
    results = batch.run()
    mat = batch.ipc_matrix()
    rows = [list(row) for row in mat]
    assert len(rows) == 2 and len(rows[0]) == 4
    assert rows[0][:2] == list(results[0].ipc)
    assert all(x != x for x in rows[0][2:])  # NaN padding on the 2-thread lane
    assert rows[1] == list(results[1].ipc)


def test_lane_coercion_and_errors():
    assert Lane.coerce(("2-MEM", "dwarn")) == Lane("2-MEM", "dwarn")
    assert Lane.coerce(("2-MEM", "dwarn", 9)) == Lane("2-MEM", "dwarn", 9)
    with pytest.raises(ValueError):
        Lane.coerce(("2-MEM",))
    with pytest.raises(ValueError):
        VecBatchSimulator(baseline(), _simcfg(), [])
    with pytest.raises(VecLaneError) as exc:
        run_batch(baseline(), _simcfg(), [("2-MEM", "no-such-policy")])
    assert exc.value.workload == "2-MEM"
    assert exc.value.policy == "no-such-policy"


def test_run_pairs_vec_backend_matches_process_backend(tmp_path):
    simcfg = _simcfg()
    pairs = [("2-MEM", pol) for pol in ("icount", "dwarn", "flush")]
    serial = run_pairs(baseline(), simcfg, list(pairs), 1)
    vec = run_pairs(baseline(), simcfg, list(pairs), 1, backend="vec")
    assert [(w, p) for w, p, _ in vec] == [(w, p) for w, p, _ in serial]
    assert [r for _, _, r in vec] == [r for _, _, r in serial]
    with pytest.raises(ValueError):
        run_pairs(baseline(), simcfg, list(pairs), 1, backend="bogus")


# ---------------------------------------------------------------------------
# hypothesis: vec batch vs the *staged* reference engine
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(["2-ILP", "2-MEM", "2-MIX", "4-MIX"]),
    policies=st.lists(st.sampled_from(SIX_POLICIES), min_size=2, max_size=4),
    seed=st.integers(min_value=0, max_value=2**20),
    warmup=st.sampled_from([0, 50]),
    cycles=st.integers(min_value=60, max_value=300),
    limit=st.sampled_from([0, 150]),
)
def test_vec_matches_staged_reference(workload, policies, seed, warmup, cycles, limit):
    """Randomized short runs: every batched lane must equal the staged
    per-cycle engine run alone — one property crossing the lockstep driver,
    the fused kernel, warm-up boundaries, and commit-limit checkpoints."""
    simcfg = SimulationConfig(
        warmup_cycles=warmup,
        measure_cycles=cycles,
        trace_length=3_000,
        seed=seed,
        commit_limit=limit,
    )
    lanes = [(workload, pol) for pol in policies]
    results = run_batch(baseline(), simcfg, lanes)
    for (wl, pol), got in zip(lanes, results):
        assert got == _serial_result(wl, pol, simcfg, staged=True), f"{wl}/{pol} diverged"
