"""Tests for the persistent binary trace-artifact cache.

The contract under test: a trace loaded from a binary artifact is
*bit-identical* to a freshly generated one (field by field, and through a
full simulation), and every failure mode — corruption, truncation, key
mismatch, concurrent writers — degrades to regeneration, never to wrong
results.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.config import SimulationConfig
from repro.experiments import ExperimentRunner
from repro.trace import (
    SyntheticTrace,
    TraceArtifactCache,
    clear_trace_cache,
    generate_trace,
    get_profile,
    trace_cache_installed,
)

_FIELDS = ("pc", "op", "dest", "src1", "src2", "addr", "brkind", "taken", "target")
_KEY = dict(length=4000, base=1 << 30, seed=777, instance=0)


def _fresh(bench: str = "mcf", **overrides) -> SyntheticTrace:
    kw = {**_KEY, **overrides}
    return SyntheticTrace(get_profile(bench), kw["length"], kw["base"], kw["seed"], kw["instance"])


def _assert_traces_equal(a: SyntheticTrace, b: SyntheticTrace) -> None:
    for field in _FIELDS:
        assert getattr(a, field) == getattr(b, field), field
    assert a.rec == b.rec
    # Static products the simulator reads besides the record arrays.
    assert a.layout.code_base == b.layout.code_base
    assert a.layout.footprint_bytes == b.layout.footprint_bytes
    assert a.aspace.l1_resident_lines() == b.aspace.l1_resident_lines()
    assert a.aspace.l2_resident_lines() == b.aspace.l2_resident_lines()


class TestRoundTrip:
    def test_loaded_equals_generated_field_by_field(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        fresh = _fresh()
        cache.store(fresh)
        loaded = cache.load(get_profile("mcf"), **_KEY)
        assert loaded is not None
        _assert_traces_equal(fresh, loaded)

    def test_taken_roundtrips_as_bool(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        cache.store(_fresh())
        loaded = cache.load(get_profile("mcf"), **_KEY)
        assert all(isinstance(t, bool) for t in loaded.taken)

    def test_key_mismatch_returns_none(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        cache.store(_fresh())
        assert cache.load(get_profile("mcf"), 4000, 1 << 30, 778, 0) is None
        assert cache.load(get_profile("gzip"), **_KEY) is None

    def test_mismatched_header_fields_rejected(self, tmp_path):
        # A valid artifact for a *different* seed copied onto this key's
        # path (stale file moved by hand): header validation must reject it.
        cache = TraceArtifactCache(tmp_path)
        path = cache.store(_fresh())
        imposter_path = TraceArtifactCache(tmp_path / "other").store(_fresh(seed=999))
        path.write_bytes(imposter_path.read_bytes())
        assert cache.load(get_profile("mcf"), **_KEY) is None


class TestCorruption:
    @pytest.mark.parametrize("mutation", ["truncate", "garbage", "flip", "empty"])
    def test_corrupt_artifact_falls_back(self, tmp_path, mutation):
        cache = TraceArtifactCache(tmp_path)
        path = cache.store(_fresh())
        data = path.read_bytes()
        if mutation == "truncate":
            path.write_bytes(data[: len(data) // 3])
        elif mutation == "garbage":
            path.write_bytes(b"not a trace artifact")
        elif mutation == "flip":
            corrupted = bytearray(data)
            corrupted[len(corrupted) // 2] ^= 0xFF
            path.write_bytes(bytes(corrupted))
        else:
            path.write_bytes(b"")
        assert cache.load(get_profile("mcf"), **_KEY) is None
        assert cache.rejected == 1
        assert not path.exists()  # dropped so the rewrite starts clean

    def test_generate_trace_regenerates_and_rewrites(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        profile = get_profile("mcf")
        clear_trace_cache()
        with trace_cache_installed(cache):
            first = generate_trace(profile, **_KEY)
            path = cache.path_for(profile, **_KEY)
            assert path.exists()
            path.write_bytes(path.read_bytes()[:100])  # truncate
            clear_trace_cache()
            second = generate_trace(profile, **_KEY)
        clear_trace_cache()
        _assert_traces_equal(first, second)
        assert path.exists()  # rewritten after the corrupt read
        assert cache.load(profile, **_KEY) is not None


class TestGenerateTraceIntegration:
    def test_miss_stores_then_disk_hit(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        profile = get_profile("twolf")
        clear_trace_cache()
        with trace_cache_installed(cache):
            generated = generate_trace(profile, **_KEY)
            assert cache.stores == 1
            clear_trace_cache()  # force the memo miss -> disk path
            loaded = generate_trace(profile, **_KEY)
            assert cache.disk_hits == 1
        clear_trace_cache()
        assert loaded is not generated
        _assert_traces_equal(generated, loaded)

    def test_none_cache_scope_is_noop(self):
        clear_trace_cache()
        with trace_cache_installed(None):
            t = generate_trace(get_profile("gzip"), 2000, 0, 5, 0)
        assert len(t) == 2000
        clear_trace_cache()


class TestSimulationParity:
    def test_cached_trace_simulation_is_bit_identical(self, tmp_path):
        """Acceptance gate: a simulation fed a cache-loaded trace must equal
        one fed a freshly generated trace, cycle for cycle."""
        simcfg = SimulationConfig(
            warmup_cycles=200, measure_cycles=1200, trace_length=5000, seed=777
        )
        fresh_runner = ExperimentRunner("baseline", simcfg)
        fresh = fresh_runner.run("2-MEM", "dwarn")

        clear_trace_cache()
        warm_runner = ExperimentRunner(
            "baseline", simcfg, trace_cache_dir=tmp_path / "traces"
        )
        first = warm_runner.run("2-MEM", "dwarn")  # generates + persists
        clear_trace_cache()
        warm_runner._mem_cache.clear()
        second = warm_runner.run("2-MEM", "dwarn")  # traces loaded from disk
        clear_trace_cache()

        assert warm_runner.trace_cache.disk_hits > 0
        for res in (first, second):
            assert res.cycles == fresh.cycles
            assert res.committed == fresh.committed
            assert res.ipc == fresh.ipc


class TestConcurrency:
    def test_two_process_store_race_leaves_valid_file(self, tmp_path):
        with ProcessPoolExecutor(max_workers=2) as pool:
            futs = [
                pool.submit(_store_repeatedly, str(tmp_path), 25) for _ in range(2)
            ]
            assert all(f.result() for f in futs)
        cache = TraceArtifactCache(tmp_path)
        loaded = cache.load(get_profile("gzip"), 3000, 0, 5, 0)
        assert loaded is not None
        _assert_traces_equal(SyntheticTrace(get_profile("gzip"), 3000, 0, 5, 0), loaded)
        assert cache.stats()["entries"] == 1
        assert not list(tmp_path.glob("*.tmp-*"))  # no stray temp files

    @pytest.mark.parametrize("mutation", ["truncate", "flip"])
    def test_corrupt_artifact_under_concurrent_readers(self, tmp_path, mutation):
        """The distributed-worker scenario: several simulation processes
        share one trace-cache directory (each worker machine's
        ``--trace-cache``) while an artifact is corrupt on disk — a torn
        copy, a bad block. Every reader must independently fall back to
        regeneration and agree bit-for-bit; the corrupt file is dropped and
        rewritten, never served."""
        cache = TraceArtifactCache(tmp_path)
        path = cache.store(_fresh("gzip", length=3000, base=0, seed=5, instance=0))
        data = path.read_bytes()
        if mutation == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:
            corrupted = bytearray(data)
            corrupted[len(corrupted) // 3] ^= 0x40
            path.write_bytes(bytes(corrupted))

        with ProcessPoolExecutor(max_workers=3) as pool:
            futs = [
                pool.submit(_load_or_regenerate, str(tmp_path), 3000)
                for _ in range(3)
            ]
            outcomes = [f.result() for f in futs]

        # At least one reader met the corrupt artifact and rejected it (a
        # late reader may see the file already healed by an earlier one's
        # rewrite); all of them regenerated or loaded an identical trace.
        assert any(rejected >= 1 for rejected, _ in outcomes), outcomes
        fingerprints = {fp for _, fp in outcomes}
        assert len(fingerprints) == 1
        reference = SyntheticTrace(get_profile("gzip"), 3000, 0, 5, 0)
        assert fingerprints == {_fingerprint(reference)}

        # The directory healed: the rewritten artifact is valid again.
        healed = TraceArtifactCache(tmp_path).load(get_profile("gzip"), 3000, 0, 5, 0)
        assert healed is not None
        _assert_traces_equal(reference, healed)

    def test_corruption_mid_sweep_on_shared_worker_cache(self, tmp_path):
        """End-to-end on the worker's actual read path: corrupt one artifact
        between two ``run_pairs`` sweeps over the same shared directory and
        check the second sweep still produces identical results."""
        from repro.experiments.parallel import run_pairs

        simcfg = SimulationConfig(
            warmup_cycles=200, measure_cycles=1200, trace_length=5000, seed=777
        )
        machine = ExperimentRunner("baseline", simcfg).machine
        pairs = [("2-MEM", "dwarn"), ("2-MEM", "icount")]
        first = run_pairs(
            machine, simcfg, pairs, 1, trace_cache_dir=str(tmp_path)
        )
        artifacts = sorted(tmp_path.glob("*.dwtrace"))
        assert artifacts, list(tmp_path.iterdir())
        blob = bytearray(artifacts[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        artifacts[0].write_bytes(bytes(blob))

        clear_trace_cache()
        second = run_pairs(
            machine, simcfg, pairs, 1, trace_cache_dir=str(tmp_path)
        )
        clear_trace_cache()
        by_pair = {(wl, pol): res for wl, pol, res in first}
        for wl, pol, res in second:
            ref = by_pair[(wl, pol)]
            assert res.ipc == ref.ipc and res.cycles == ref.cycles


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path):
        cache = TraceArtifactCache(tmp_path)
        cache.store(_fresh("gzip"))
        cache.store(_fresh("mcf"))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0
        assert cache.clear() == 0  # idempotent on an empty directory

    def test_stats_on_missing_directory(self, tmp_path):
        cache = TraceArtifactCache(tmp_path / "never-created")
        assert cache.stats()["entries"] == 0
        assert cache.clear() == 0


def _store_repeatedly(directory: str, n: int) -> bool:
    """Worker for the write-race test: hammer one artifact path."""
    trace = SyntheticTrace(get_profile("gzip"), 3000, 0, 5, 0)
    cache = TraceArtifactCache(directory)
    for _ in range(n):
        cache.store(trace)
    return True


def _fingerprint(trace: SyntheticTrace) -> tuple:
    """Cheap cross-process identity for a trace's record arrays."""
    return (
        len(trace),
        sum(trace.pc),
        sum(trace.addr),
        sum(trace.taken),
        trace.layout.footprint_bytes,
    )


def _load_or_regenerate(directory: str, length: int) -> tuple[int, tuple]:
    """Worker for the concurrent-corruption test: the exact read path a
    distributed worker's simulation process takes (per-process cache memo
    over a shared directory), returning (rejected count, fingerprint)."""
    from repro.experiments.parallel import _worker_trace_cache

    cache = _worker_trace_cache(directory)
    profile = get_profile("gzip")
    clear_trace_cache()
    with trace_cache_installed(cache):
        trace = generate_trace(profile, length, 0, 5, 0)
    clear_trace_cache()
    return cache.rejected, _fingerprint(trace)


class TestCLICacheCommand:
    def test_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache = TraceArtifactCache(tmp_path / "traces")
        cache.store(_fresh("gzip"))
        (tmp_path / "results").mkdir()
        (tmp_path / "results" / "fake-result.json").write_text("{}")

        rc = main([
            "cache", "stats",
            "--cache-dir", str(tmp_path / "results"),
            "--trace-cache", str(tmp_path / "traces"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traces" in out and "results" in out

        rc = main([
            "cache", "clear",
            "--cache-dir", str(tmp_path / "results"),
            "--trace-cache", str(tmp_path / "traces"),
        ])
        assert rc == 0
        assert "removed 1 cached results, 1 trace artifacts" in capsys.readouterr().out
        assert cache.stats()["entries"] == 0
        assert not list((tmp_path / "results").glob("*.json"))
