"""Regression tests for the ExperimentRunner disk cache's version folding.

The bug class being guarded: a library upgrade changes simulation results
with no config-visible difference, but the old on-disk entries still match
by filename and get served stale. The filename must therefore fold in both
``CACHE_VERSION`` and the installed ``repro`` version explicitly.
"""

from __future__ import annotations

import json

import repro
from repro.config import SimulationConfig
from repro.experiments import runner as runner_mod
from repro.experiments.runner import CACHE_VERSION, ExperimentRunner

CFG = SimulationConfig(warmup_cycles=0, measure_cycles=200, trace_length=2_000)


def fresh_runner(cache_dir) -> ExperimentRunner:
    return ExperimentRunner("baseline", CFG, cache_dir=cache_dir)


class TestDiskCacheVersioning:
    def test_filename_folds_both_versions(self, tmp_path):
        r = fresh_runner(tmp_path)
        r.run("gcc", "icount")
        (path,) = tmp_path.iterdir()
        assert f"-c{CACHE_VERSION}-" in path.name
        assert f"-r{repro.__version__}" in path.name

    def test_disk_hit_skips_simulation(self, tmp_path):
        a = fresh_runner(tmp_path)
        res = a.run("gcc", "icount")
        assert a.simulations_run == 1
        b = fresh_runner(tmp_path)  # new memory cache, same disk cache
        assert b.run("gcc", "icount") == res
        assert b.simulations_run == 0

    def test_matching_version_serves_disk_entry(self, tmp_path):
        """The disk entry is authoritative while versions match — this is
        what makes the version folding below load-bearing."""
        a = fresh_runner(tmp_path)
        a.run("gcc", "icount")
        (path,) = tmp_path.iterdir()
        data = json.loads(path.read_text())
        data["cycles"] = 99_999  # simulate an entry from different behavior
        path.write_text(json.dumps(data))
        b = fresh_runner(tmp_path)
        assert b.run("gcc", "icount").cycles == 99_999
        assert b.simulations_run == 0

    def test_cache_version_bump_invalidates_disk_entries(self, tmp_path, monkeypatch):
        a = fresh_runner(tmp_path)
        a.run("gcc", "icount")
        (path,) = tmp_path.iterdir()
        data = json.loads(path.read_text())
        data["cycles"] = 99_999  # stale semantics under the *old* version
        path.write_text(json.dumps(data))
        monkeypatch.setattr(runner_mod, "CACHE_VERSION", CACHE_VERSION + 1)
        b = fresh_runner(tmp_path)
        res = b.run("gcc", "icount")
        assert b.simulations_run == 1  # stale entry was not served
        assert res.cycles != 99_999

    def test_library_version_bump_invalidates_disk_entries(
        self, tmp_path, monkeypatch
    ):
        a = fresh_runner(tmp_path)
        a.run("gcc", "icount")
        (path,) = tmp_path.iterdir()
        data = json.loads(path.read_text())
        data["cycles"] = 99_999
        path.write_text(json.dumps(data))
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        b = fresh_runner(tmp_path)
        res = b.run("gcc", "icount")
        assert b.simulations_run == 1
        assert res.cycles != 99_999
