"""CLI surface of the service subsystem: ``dwarn-sim version`` and the
``serve``/``route``/``loadtest`` argument wiring (the daemons themselves
are exercised end-to-end by tests/test_service_e2e.py,
tests/test_service_router.py and the CI smoke jobs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.columnar import CHECKPOINT_VERSION, SNAPSHOT_VERSION
from repro.experiments.runner import CACHE_VERSION
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.router import ROUTER_VERSION
from repro.service.store import STORE_VERSION
from repro.trace.artifact import ARTIFACT_VERSION


class TestVersionCommand:
    def test_prints_every_schema_version(self, capsys):
        import repro

        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert f"trace-artifact schema: v{ARTIFACT_VERSION}" in out
        assert f"result-cache schema:   v{CACHE_VERSION}" in out
        assert f"service protocol:      v{PROTOCOL_VERSION}" in out
        assert f"router schema:         v{ROUTER_VERSION}" in out
        assert f"result-store schema:   v{STORE_VERSION}" in out
        assert f"snapshot codec:        v{SNAPSHOT_VERSION}" in out
        assert f"checkpoint envelope:   v{CHECKPOINT_VERSION}" in out

    def test_artifact_details_shown(self, capsys):
        main(["version"])
        out = capsys.readouterr().out
        assert "DWTR" in out          # artifact magic
        assert "bytes/record" in out  # record size


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8177
        assert args.queue_capacity == 64
        assert args.batch_max == 8
        assert args.processes == 1
        assert args.store.endswith("results.jsonl")
        assert args.ttl is None
        assert args.port_file is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--port-file", "/tmp/p",
                "--queue-capacity", "3", "--batch-max", "2",
                "--processes", "4", "--ttl", "60.5", "--store", "",
                "--dispatch-delay", "0.25",
            ]
        )
        assert args.port == 0
        assert args.port_file == "/tmp/p"
        assert args.queue_capacity == 3
        assert args.batch_max == 2
        assert args.processes == 4
        assert args.ttl == pytest.approx(60.5)
        assert args.store == ""  # '' disables persistence
        assert args.dispatch_delay == pytest.approx(0.25)

    def test_bad_subcommand_still_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestRouteParser:
    def test_defaults(self):
        args = build_parser().parse_args(["route"])
        assert args.command == "route"
        assert args.port == 8178  # one above serve's 8177
        assert args.shards == 2
        assert args.shard is None  # supervised mode by default
        assert args.state_dir == ".cache/router"
        assert args.rate == 0.0  # admission control off by default
        assert args.burst == pytest.approx(30.0)
        assert args.cooldown == pytest.approx(2.0)

    def test_external_shards_repeatable(self):
        args = build_parser().parse_args(
            [
                "route", "--shard", "127.0.0.1:9000", "--shard", "h2:9001",
                "--rate", "5", "--burst", "10", "--cooldown", "0.5",
                "--port", "0", "--port-file", "/tmp/rp",
            ]
        )
        assert args.shard == ["127.0.0.1:9000", "h2:9001"]
        assert args.rate == pytest.approx(5.0)
        assert args.burst == pytest.approx(10.0)
        assert args.cooldown == pytest.approx(0.5)
        assert args.port == 0 and args.port_file == "/tmp/rp"

    def test_supervised_shard_passthrough_flags(self):
        args = build_parser().parse_args(
            [
                "route", "--shards", "4", "--queue-capacity", "128",
                "--batch-max", "4", "--backend", "vec", "--lease-ttl", "5",
            ]
        )
        assert args.shards == 4
        assert args.queue_capacity == 128
        assert args.batch_max == 4
        assert args.backend == "vec"
        assert args.lease_ttl == pytest.approx(5.0)


class TestWorkerParser:
    def test_checkpointing_off_by_default(self):
        args = build_parser().parse_args(["worker"])
        assert args.command == "worker"
        assert args.checkpoint_interval == 0

    def test_checkpoint_interval_parses(self):
        args = build_parser().parse_args(
            ["worker", "--checkpoint-interval", "5000", "--capacity", "2"]
        )
        assert args.checkpoint_interval == 5000
        assert args.capacity == 2


class TestLoadtestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.command == "loadtest"
        assert args.router is None  # boots its own fleet by default
        assert args.shards == 2
        assert args.jobs == 1000
        assert args.unique == 24
        assert args.rolling_restart is False
        assert args.out == "BENCH_service.json"
        assert args.min_jobs_per_min is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "loadtest", "--router", "http://127.0.0.1:8178",
                "--clients", "64", "--stream-clients", "4", "--jobs", "2000",
                "--unique", "36", "--rolling-restart",
                "--min-jobs-per-min", "1000", "--out", "/tmp/b.json",
                "--seed", "9",
            ]
        )
        assert args.router == "http://127.0.0.1:8178"
        assert args.clients == 64 and args.stream_clients == 4
        assert args.jobs == 2000 and args.unique == 36
        assert args.rolling_restart is True
        assert args.min_jobs_per_min == pytest.approx(1000.0)
        assert args.out == "/tmp/b.json"
        assert args.seed == 9
