"""CLI surface of the service subsystem: ``dwarn-sim version`` and the
``serve`` argument wiring (the daemon itself is exercised end-to-end by
tests/test_service_e2e.py and the CI smoke job)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import CACHE_VERSION
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.store import STORE_VERSION
from repro.trace.artifact import ARTIFACT_VERSION


class TestVersionCommand:
    def test_prints_every_schema_version(self, capsys):
        import repro

        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert f"trace-artifact schema: v{ARTIFACT_VERSION}" in out
        assert f"result-cache schema:   v{CACHE_VERSION}" in out
        assert f"service protocol:      v{PROTOCOL_VERSION}" in out
        assert f"result-store schema:   v{STORE_VERSION}" in out

    def test_artifact_details_shown(self, capsys):
        main(["version"])
        out = capsys.readouterr().out
        assert "DWTR" in out          # artifact magic
        assert "bytes/record" in out  # record size


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8177
        assert args.queue_capacity == 64
        assert args.batch_max == 8
        assert args.processes == 1
        assert args.store.endswith("results.jsonl")
        assert args.ttl is None
        assert args.port_file is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--port-file", "/tmp/p",
                "--queue-capacity", "3", "--batch-max", "2",
                "--processes", "4", "--ttl", "60.5", "--store", "",
                "--dispatch-delay", "0.25",
            ]
        )
        assert args.port == 0
        assert args.port_file == "/tmp/p"
        assert args.queue_capacity == 3
        assert args.batch_max == 2
        assert args.processes == 4
        assert args.ttl == pytest.approx(60.5)
        assert args.store == ""  # '' disables persistence
        assert args.dispatch_delay == pytest.approx(0.25)

    def test_bad_subcommand_still_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])
