"""Tests for the event wheel."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.events import EventWheel


class TestEventWheel:
    def test_schedule_and_drain(self):
        w = EventWheel()
        w.schedule(5, "a")
        w.schedule(5, "b")
        w.schedule(7, "c")
        assert w.drain(5) == ["a", "b"]
        assert w.drain(5) == []
        assert w.drain(6) == []
        assert w.drain(7) == ["c"]

    def test_drain_preserves_scheduling_order(self):
        w = EventWheel()
        for i in range(10):
            w.schedule(3, i)
        assert w.drain(3) == list(range(10))

    def test_len_tracks_pending(self):
        w = EventWheel()
        assert len(w) == 0
        assert not w
        w.schedule(1, "x")
        w.schedule(2, "y")
        assert len(w) == 2
        assert w
        w.drain(1)
        assert len(w) == 1
        w.drain(2)
        assert len(w) == 0

    def test_next_cycle(self):
        w = EventWheel()
        assert w.next_cycle() is None
        w.schedule(9, "a")
        w.schedule(4, "b")
        assert w.next_cycle() == 4

    def test_iter_all_sorted(self):
        w = EventWheel()
        w.schedule(3, "c")
        w.schedule(1, "a")
        w.schedule(2, "b")
        assert [c for c, _ in w.iter_all()] == [1, 2, 3]

    def test_clear(self):
        w = EventWheel()
        w.schedule(1, "a")
        w.clear()
        assert len(w) == 0
        assert w.drain(1) == []

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=50), st.integers()),
            max_size=60,
        )
    )
    def test_property_everything_scheduled_is_drained_once(self, events):
        w = EventWheel()
        for cycle, payload in events:
            w.schedule(cycle, payload)
        drained = []
        for cycle in range(51):
            drained.extend(w.drain(cycle))
        assert sorted(map(repr, drained)) == sorted(repr(p) for _, p in events)
        assert len(w) == 0
