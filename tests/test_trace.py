"""Tests for the synthetic trace substrate: profiles, codegen, walk, addresses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import BranchKind, OpClass
from repro.isa.registers import REG_NONE
from repro.trace import (
    ILP_BENCHMARKS,
    MEM_BENCHMARKS,
    PROFILES,
    AddressSpace,
    WrongPathSupplier,
    generate_trace,
    get_profile,
)
from repro.trace.address_space import (
    COLD_OFFSET,
    L1_SETS,
    LINE_BYTES,
    WARM_OFFSET,
    set_stagger,
)
from repro.trace.codegen import INSTR_BYTES, CodeLayout


class TestProfiles:
    def test_all_twelve_specint_benchmarks_present(self):
        expected = {
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
            "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
        }
        assert set(PROFILES) == expected

    def test_mem_ilp_split_matches_table_2a(self):
        # Paper: MEM = L2 load miss rate above ~1% (parser is grouped MEM).
        assert set(MEM_BENCHMARKS) == {"mcf", "twolf", "vpr", "parser"}
        assert len(ILP_BENCHMARKS) == 8

    def test_table_2a_values(self):
        mcf = get_profile("mcf")
        assert mcf.l1_missrate == pytest.approx(0.323)
        assert mcf.l2_missrate == pytest.approx(0.296)
        assert mcf.l1_to_l2_ratio == pytest.approx(0.916, abs=0.01)
        gzip = get_profile("gzip")
        assert gzip.l1_to_l2_ratio == pytest.approx(0.02, abs=0.002)

    def test_tier_probabilities_sum(self):
        for p in PROFILES.values():
            assert p.p_cold + p.p_warm == pytest.approx(p.l1_missrate)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="mcf"):
            get_profile("nonesuch")

    def test_invalid_profile_rejected(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(get_profile("mcf"), l2_missrate=0.5)  # > l1

    def test_mix_fractions_below_one(self):
        for p in PROFILES.values():
            assert p.load_frac + p.store_frac + p.branch_frac + p.fp_frac < 1.0


class TestCodeLayout:
    def test_blocks_laid_out_contiguously(self):
        lay = CodeLayout(get_profile("gzip"), 0x1000, seed=1)
        pc = 0x1000
        for blk in lay.blocks:
            assert blk.pc == pc
            pc += blk.num_instrs * INSTR_BYTES
        assert lay.footprint_bytes == pc - 0x1000

    def test_block_count_from_profile(self):
        p = get_profile("gcc")
        lay = CodeLayout(p, 0, seed=2)
        assert len(lay) == p.n_blocks

    def test_deterministic(self):
        a = CodeLayout(get_profile("mcf"), 0, seed=7)
        b = CodeLayout(get_profile("mcf"), 0, seed=7)
        assert [(x.pc, x.brkind, x.taken_index) for x in a.blocks] == [
            (x.pc, x.brkind, x.taken_index) for x in b.blocks
        ]

    def test_seeds_differ(self):
        a = CodeLayout(get_profile("mcf"), 0, seed=7)
        b = CodeLayout(get_profile("mcf"), 0, seed=8)
        assert [x.brkind for x in a.blocks] != [x.brkind for x in b.blocks]

    def test_cond_targets_are_backward_jumps(self):
        lay = CodeLayout(get_profile("gzip"), 0, seed=3)
        n = len(lay)
        for blk in lay.blocks:
            if blk.brkind == BranchKind.COND:
                delta = (blk.index - blk.taken_index) % n
                assert 1 <= delta <= 8

    def test_gcc_has_largest_footprint(self):
        foot = {
            name: CodeLayout(get_profile(name), 0, seed=1).footprint_bytes
            for name in ("gcc", "gzip", "mcf")
        }
        assert foot["gcc"] > foot["gzip"]
        assert foot["gcc"] > foot["mcf"]


class TestSyntheticTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        # Non-zero base: thread 0's first hot line would legitimately be
        # address 0, which would collide with the "no address" sentinel.
        return generate_trace(get_profile("twolf"), 8000, 1 << 30, seed=99)

    def test_length(self, trace):
        assert len(trace) == 8000

    def test_successor_consistency(self, trace):
        """Index i+1 is the architectural successor of index i — THE trace
        invariant the fetch unit and squash recovery rely on."""
        for i in range(len(trace) - 1):
            if trace.op[i] == OpClass.BRANCH:
                expected = trace.target[i] if trace.taken[i] else trace.pc[i] + 4
            else:
                expected = trace.pc[i] + 4
            assert trace.pc[i + 1] == expected, f"broken successor at {i}"

    def test_wrap_patch(self, trace):
        last = len(trace) - 1
        assert trace.op[last] == OpClass.BRANCH
        assert trace.brkind[last] == BranchKind.JUMP
        assert trace.taken[last]
        assert trace.target[last] == trace.pc[0]

    def test_non_branches_have_no_branch_fields(self, trace):
        for i in range(0, len(trace) - 1, 7):
            if trace.op[i] != OpClass.BRANCH:
                assert trace.brkind[i] == BranchKind.NONE
                assert not trace.taken[i]

    def test_memory_ops_have_addresses(self, trace):
        for i in range(len(trace)):
            if trace.op[i] in (OpClass.LOAD, OpClass.STORE):
                assert trace.addr[i] > 0
            elif trace.op[i] != OpClass.BRANCH:
                assert trace.addr[i] == 0

    def test_stores_have_no_dest(self, trace):
        for i in range(len(trace)):
            if trace.op[i] == OpClass.STORE:
                assert trace.dest[i] == REG_NONE

    def test_fp_ops_use_fp_dest(self):
        tr = generate_trace(get_profile("eon"), 8000, 0, seed=5)
        for i in range(len(tr)):
            if tr.op[i] == OpClass.FP:
                assert tr.dest[i] >= 32

    def test_mix_within_tolerance(self, trace):
        counts = trace.op_counts()
        p = trace.profile
        n = len(trace)
        assert counts.get(int(OpClass.LOAD), 0) / n == pytest.approx(p.load_frac, rel=0.15)
        assert counts.get(int(OpClass.STORE), 0) / n == pytest.approx(p.store_frac, rel=0.2)
        assert counts.get(int(OpClass.BRANCH), 0) / n == pytest.approx(p.branch_frac, rel=0.3)

    def test_deterministic_and_cached(self):
        a = generate_trace(get_profile("gzip"), 2000, 0, seed=1)
        b = generate_trace(get_profile("gzip"), 2000, 0, seed=1)
        assert a is b  # cache hit
        c = generate_trace(get_profile("gzip"), 2000, 0, seed=2)
        assert a.addr != c.addr

    def test_instances_decorrelated(self):
        a = generate_trace(get_profile("mcf"), 2000, 0, seed=1, instance=0)
        b = generate_trace(get_profile("mcf"), 2000, 1 << 30, seed=1, instance=1)
        assert a.pc[:100] != b.pc[:100]

    def test_record_accessor(self, trace):
        rec = trace.record(0)
        assert rec == (
            trace.pc[0], trace.op[0], trace.dest[0], trace.src1[0],
            trace.src2[0], trace.addr[0], trace.brkind[0], trace.taken[0],
            trace.target[0],
        )

    def test_pcs_inside_code_region(self, trace):
        lo = trace.layout.code_base
        hi = lo + trace.layout.footprint_bytes
        assert all(lo <= pc < hi for pc in trace.pc)


class TestAddressSpace:
    def test_tier_probabilities(self):
        a = AddressSpace(get_profile("mcf"), 0, seed=1)
        hot, warm, cold = a.tier_probabilities
        assert cold == pytest.approx(0.296)
        assert warm == pytest.approx(0.323 - 0.296)
        assert hot + warm + cold == pytest.approx(1.0)

    def test_warm_geometry_bounds(self):
        for name in PROFILES:
            a = AddressSpace(get_profile(name), 0, seed=1)
            assert 3 <= a.warm_tags <= 16      # beat L1 assoc, fit L2 assoc
            assert a.warm_groups in (8, 16)

    def test_warm_addresses_collide_in_l1_sets(self):
        a = AddressSpace(get_profile("mcf"), 0, seed=1)
        lines = [(addr - WARM_OFFSET) // LINE_BYTES for addr in
                 (a._warm_address() for _ in range(a.warm_groups * a.warm_tags))]
        sets = {ln % L1_SETS for ln in lines}
        assert len(sets) == a.warm_groups  # K tags share each of G sets

    def test_cold_addresses_never_repeat_lines_quickly(self):
        a = AddressSpace(get_profile("mcf"), 0, seed=1)
        lines = set()
        for _ in range(2000):
            addr = a.base + COLD_OFFSET  # force cold via internals
        # use the public API instead: draw loads and keep cold ones
        a2 = AddressSpace(get_profile("mcf"), 0, seed=2)
        cold = []
        for _ in range(5000):
            addr = a2.load_address()
            off = addr & ((1 << 30) - 1)
            if COLD_OFFSET <= off < (512 << 20):
                cold.append(addr // LINE_BYTES)
        assert len(cold) == len(set(cold))  # every cold access a fresh line

    def test_stagger_distinct_per_thread(self):
        staggers = {set_stagger(t << 30) for t in range(8)}
        assert len(staggers) == 8

    def test_prewarm_line_lists(self):
        a = AddressSpace(get_profile("gzip"), 1 << 30, seed=1)
        l1 = a.l1_resident_lines()
        l2 = a.l2_resident_lines()
        assert len(l1) == a.profile.hot_lines + max(16, a.profile.hot_lines // 2)
        assert len(l2) == a.warm_groups * a.warm_tags
        assert all(addr >> 30 == 1 for addr in l1 + l2)  # inside thread slice

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=7))
    def test_property_addresses_stay_in_thread_slice(self, tid):
        a = AddressSpace(get_profile("twolf"), tid << 30, seed=3)
        for _ in range(300):
            assert a.load_address() >> 30 == tid
            assert a.store_address() >> 30 == tid


class TestWrongPathSupplier:
    def test_deterministic(self):
        wp = WrongPathSupplier(get_profile("gzip"), 0, seed=4)
        assert wp.supply(0x1000) == wp.supply(0x1000)

    def test_distinct_pcs_differ(self):
        wp = WrongPathSupplier(get_profile("gzip"), 0, seed=4)
        recs = {wp.supply(0x1000 + 4 * i) for i in range(64)}
        assert len(recs) > 32

    def test_branches_are_never_taken_conds(self):
        wp = WrongPathSupplier(get_profile("gcc"), 0, seed=4)
        for i in range(500):
            rec = wp.supply(0x2000 + 4 * i)
            if rec[0] == OpClass.BRANCH:
                assert rec[5] == BranchKind.COND
                assert rec[6] is False

    def test_loads_have_addresses_in_thread_slice(self):
        wp = WrongPathSupplier(get_profile("mcf"), 2 << 30, seed=4)
        for i in range(500):
            rec = wp.supply(0x3000 + 4 * i)
            if rec[0] in (OpClass.LOAD, OpClass.STORE):
                assert rec[4] >> 30 == 2

    def test_mix_roughly_matches_profile(self):
        p = get_profile("twolf")
        wp = WrongPathSupplier(p, 0, seed=4)
        from collections import Counter

        c = Counter(wp.supply(4 * i)[0] for i in range(4000))
        assert c[int(OpClass.LOAD)] / 4000 == pytest.approx(p.load_frac, rel=0.3)
