"""Tests for the set-associative cache model, including an LRU reference model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.memory import CacheConfig
from repro.mem.cache import Cache


def tiny_cache(assoc=2, sets=4, banks=2) -> Cache:
    line = 64
    return Cache(CacheConfig("t", sets * assoc * line, assoc, line, banks, 1))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        assert not c.probe(5)
        c.fill(5)
        assert c.probe(5)

    def test_geometry(self):
        c = Cache(CacheConfig("g", 64 * 1024, 2, 64, 8, 1))
        assert c.cfg.num_lines == 1024
        assert c.cfg.num_sets == 512

    def test_lru_within_set(self):
        c = tiny_cache(assoc=2, sets=4)
        # Lines 0, 4, 8 all map to set 0.
        c.fill(0)
        c.fill(4)
        c.fill(8)  # evicts 0
        assert not c.contains(0)
        assert c.contains(4)
        assert c.contains(8)

    def test_probe_refreshes_lru(self):
        c = tiny_cache(assoc=2, sets=4)
        c.fill(0)
        c.fill(4)
        c.probe(0)  # refresh -> victim should be 4
        c.fill(8)
        assert c.contains(0)
        assert not c.contains(4)

    def test_fill_returns_victim(self):
        c = tiny_cache(assoc=2, sets=4)
        c.fill(0)
        c.fill(4)
        assert c.fill(8) == 0

    def test_fill_existing_is_noop(self):
        c = tiny_cache()
        c.fill(3)
        assert c.fill(3) == -1
        assert c.occupancy() == 1

    def test_invalidate(self):
        c = tiny_cache()
        c.fill(7)
        assert c.invalidate(7)
        assert not c.contains(7)
        assert not c.invalidate(7)

    def test_stats(self):
        c = tiny_cache()
        c.probe(1)
        c.fill(1)
        c.probe(1)
        assert c.accesses == 2
        assert c.misses == 1
        assert c.miss_rate == pytest.approx(0.5)
        c.reset_stats()
        assert c.accesses == 0


class TestBanking:
    def test_same_bank_same_cycle_conflicts(self):
        c = tiny_cache(banks=2)
        assert not c.bank_conflict(0, cycle=10)
        assert c.bank_conflict(2, cycle=10)  # line 2 -> bank 0 again
        assert c.bank_conflicts == 1

    def test_different_banks_no_conflict(self):
        c = tiny_cache(banks=2)
        assert not c.bank_conflict(0, cycle=10)
        assert not c.bank_conflict(1, cycle=10)

    def test_new_cycle_resets(self):
        c = tiny_cache(banks=2)
        c.bank_conflict(0, cycle=10)
        assert not c.bank_conflict(0, cycle=11)


class _RefLRU:
    """Reference model: per-set ordered list, textbook LRU."""

    def __init__(self, sets: int, assoc: int) -> None:
        self.sets = [[] for _ in range(sets)]
        self.assoc = assoc
        self.mask = sets - 1

    def access(self, line: int) -> bool:
        s = self.sets[line & self.mask]
        hit = line in s
        if hit:
            s.remove(line)
        elif len(s) >= self.assoc:
            s.pop(0)
        s.append(line)
        return hit


class TestLRUProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    def test_matches_reference_model(self, lines):
        c = tiny_cache(assoc=2, sets=8)
        ref = _RefLRU(8, 2)
        for line in lines:
            got = c.probe(line)
            if not got:
                c.fill(line)
            expected = ref.access(line)
            assert got == expected, f"divergence at line {line}"

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
    def test_occupancy_bounded(self, lines):
        c = tiny_cache(assoc=2, sets=4)
        for line in lines:
            if not c.probe(line):
                c.fill(line)
        assert c.occupancy() <= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=2, max_size=100))
    def test_immediate_refetch_hits(self, lines):
        c = tiny_cache(assoc=2, sets=8)
        for line in lines:
            if not c.probe(line):
                c.fill(line)
            assert c.probe(line)
