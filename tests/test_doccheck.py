"""Documentation checker: link validation, prose doc-reference checking,
fenced-doctest extraction/execution, and a full pass over the repo docs."""

from __future__ import annotations

from pathlib import Path

from repro.utils.doccheck import (
    check_links,
    extract_python_blocks,
    iter_markdown_files,
    main,
    run_doctests,
)

REPO = Path(__file__).resolve().parent.parent


def md(tmp_path: Path, text: str, name: str = "doc.md") -> Path:
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLinkCheck:
    def test_broken_relative_link(self, tmp_path):
        doc = md(tmp_path, "See [other](missing.md).")
        problems = check_links(doc, root=tmp_path)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_resolving_link_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# hi")
        doc = md(tmp_path, "See [other](other.md) and [frag](other.md#sec).")
        assert check_links(doc, root=tmp_path) == []

    def test_external_and_anchor_links_skipped(self, tmp_path):
        doc = md(
            tmp_path,
            "[a](https://example.com/x.md) [b](http://x) "
            "[c](mailto:x@y.z) [d](#local-anchor)",
        )
        assert check_links(doc, root=tmp_path) == []

    def test_stale_prose_doc_reference(self, tmp_path):
        doc = md(tmp_path, "As docs/NOPE.md explains, nothing works.")
        problems = check_links(doc, root=tmp_path)
        assert len(problems) == 1 and "docs/NOPE.md" in problems[0]

    def test_prose_reference_resolves_against_root(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "REAL.md").write_text("# real")
        sub = tmp_path / "docs" / "guide.md"
        sub.write_text("See docs/REAL.md for details.")
        assert check_links(sub, root=tmp_path) == []

    def test_links_inside_code_fences_ignored(self, tmp_path):
        doc = md(tmp_path, "```text\n[fake](nowhere.md) docs/FAKE.md\n```\n")
        assert check_links(doc, root=tmp_path) == []

    def test_lowercase_prose_mentions_not_flagged(self, tmp_path):
        doc = md(tmp_path, "rename my_notes.md whenever you like")
        assert check_links(doc, root=tmp_path) == []

    def test_iter_markdown_files_dedupes_and_recurses(self, tmp_path):
        (tmp_path / "a.md").write_text("a")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.md").write_text("b")
        files = iter_markdown_files([tmp_path, tmp_path / "a.md"])
        assert [f.name for f in files] == ["a.md", "b.md"]


class TestDoctests:
    def test_extract_blocks_with_line_numbers(self, tmp_path):
        doc = md(tmp_path, "intro\n\n```python\n>>> 1 + 1\n2\n```\n\n```text\nnope\n```\n")
        blocks = extract_python_blocks(doc)
        assert len(blocks) == 1
        lineno, src = blocks[0]
        assert lineno == 4
        assert ">>> 1 + 1" in src

    def test_passing_doctest(self, tmp_path):
        doc = md(tmp_path, "```python\n>>> 2 * 21\n42\n```\n")
        assert run_doctests(doc) == []

    def test_failing_doctest_reported_with_location(self, tmp_path):
        doc = md(tmp_path, "```python\n>>> 2 * 21\n43\n```\n")
        problems = run_doctests(doc)
        assert len(problems) == 1
        assert "doc.md:2" in problems[0]

    def test_blocks_share_globals_in_order(self, tmp_path):
        doc = md(
            tmp_path,
            "```python\n>>> x = 21\n```\n\n```python\n>>> x * 2\n42\n```\n",
        )
        assert run_doctests(doc) == []

    def test_illustrative_blocks_without_prompts_skipped(self, tmp_path):
        doc = md(tmp_path, "```python\nthis is not even python ===\n```\n")
        assert run_doctests(doc) == []


class TestMain:
    def test_clean_docs_exit_zero(self, tmp_path, capsys):
        (tmp_path / "ok.md").write_text("fine [x](ok.md)\n")
        assert main([str(tmp_path / "ok.md"), "--root", str(tmp_path)]) == 0
        assert "doccheck OK" in capsys.readouterr().out

    def test_problems_exit_nonzero(self, tmp_path, capsys):
        bad = md(tmp_path, "[x](gone.md)\n\n```python\n>>> 1\n2\n```\n", "bad.md")
        rc = main([str(bad), "--doctest", str(bad), "--root", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "broken link" in err and "doctest failure" in err

    def test_missing_file_reported(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost.md")]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_repo_docs_are_clean(self):
        """The real README + docs/ must link-check (the CI docs job; the
        OBSERVABILITY.md doctests run there too, but cost simulations, so
        tier-1 only checks links)."""
        rc = main([str(REPO / "README.md"), str(REPO / "docs"), "--root", str(REPO)])
        assert rc == 0
