"""Behavioural tests for every fetch policy."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import POLICIES, PAPER_POLICIES, Simulator, make_policy
from repro.core.policies import (
    DataGatingPolicy,
    DWarnPolicy,
    MissPredictor,
    PredictiveDataGatingPolicy,
)
from repro.workloads import build_programs, build_single, get_workload


CFG = SimulationConfig(warmup_cycles=300, measure_cycles=2500, trace_length=8000, seed=11)


def sim_for(workload, policy, simcfg=CFG, machine=None):
    if isinstance(policy, str):
        policy = make_policy(policy)
    programs = (
        build_programs(get_workload(workload), simcfg)
        if "-" in workload
        else build_single(workload, simcfg)
    )
    return Simulator(machine or baseline(), programs, policy, simcfg)


class TestRegistry:
    def test_paper_policies_subset(self):
        assert set(PAPER_POLICIES) <= set(POLICIES)

    def test_all_instantiable(self):
        for name in POLICIES:
            p = make_policy(name)
            assert p.name == name

    def test_fresh_instances(self):
        assert make_policy("dwarn") is not make_policy("dwarn")

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="dwarn"):
            make_policy("bogus")


class TestICount:
    def test_orders_by_icount(self):
        sim = sim_for("4-ILP", "icount")
        for tc, ic in zip(sim.threads, (5, 1, 3, 0)):
            tc.icount = ic
        assert sim.policy.fetch_order() == [3, 1, 2, 0]

    def test_ties_broken_by_tid(self):
        sim = sim_for("4-ILP", "icount")
        for tc in sim.threads:
            tc.icount = 7
        assert sim.policy.fetch_order() == [0, 1, 2, 3]


class TestDWarn:
    def test_normal_before_dmiss(self):
        sim = sim_for("4-MIX", "dwarn")
        sim.threads[0].dmiss = 1
        sim.threads[0].icount = 0
        sim.threads[2].dmiss = 2
        # icount order within groups.
        sim.threads[1].icount = 9
        sim.threads[3].icount = 1
        order = sim.policy.fetch_order()
        assert order == [3, 1, 0, 2]

    def test_hybrid_active_only_below_three_threads(self):
        sim2 = sim_for("2-MEM", "dwarn")
        sim4 = sim_for("4-MEM", "dwarn")
        assert sim2.policy._hybrid_active
        assert not sim4.policy._hybrid_active

    def test_pure_variant_never_gates(self):
        sim = sim_for("2-MEM", "dwarn-pure")
        sim.run()
        assert sim.stats.gated_cycles == [0, 0]

    def test_hybrid_gates_on_two_thread_mem(self):
        sim = sim_for("2-MEM", "dwarn")
        sim.run()
        assert sum(sim.stats.gated_cycles) > 0

    def test_four_threads_never_gated(self):
        sim = sim_for("4-MEM", "dwarn")
        sim.run()
        assert sum(sim.stats.gated_cycles) == 0

    def test_no_thread_starved(self):
        res = sim_for("4-MIX", "dwarn").run()
        assert all(c > 0 for c in res.committed)

    def test_dwarn_name_variants(self):
        assert DWarnPolicy().name == "dwarn"
        assert DWarnPolicy(hybrid=False).name == "dwarn-pure"


class TestDG:
    def test_excludes_missing_threads(self):
        sim = sim_for("4-MIX", "dg")
        sim.threads[1].dmiss = 1
        order = sim.policy.fetch_order()
        assert 1 not in order
        assert set(order) == {0, 2, 3}

    def test_threshold_two_tolerates_one_miss(self):
        sim = sim_for("4-MIX", DataGatingPolicy(threshold=2))
        sim.threads[1].dmiss = 1
        assert 1 in sim.policy.fetch_order()
        sim.threads[1].dmiss = 2
        assert 1 not in sim.policy.fetch_order()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DataGatingPolicy(threshold=0)

    def test_gates_mem_thread_hard(self):
        # DG sacrifices MEM threads: mcf should commit less under DG than
        # under plain ICOUNT in a MIX workload (the paper's §5.1 argument).
        r_dg = sim_for("4-MIX", "dg").run()
        r_ic = sim_for("4-MIX", "icount").run()
        mcf_slot = r_dg.benchmarks.index("mcf")
        assert r_dg.committed[mcf_slot] < r_ic.committed[mcf_slot]


class TestStallAndFlush:
    def test_stall_gates_but_never_squashes(self):
        sim = sim_for("2-MEM", "stall")
        res = sim.run()
        assert sum(sim.stats.gated_cycles) > 0
        assert res.total_flushed == 0

    def test_flush_squashes_and_refetches(self):
        sim = sim_for("2-MEM", "flush")
        res = sim.run()
        assert res.total_flushed > 0
        assert sum(res.flush_events) > 0
        assert res.flushed_fraction > 0.02  # MEM workloads flush plenty

    def test_flush_keeps_one_thread_running(self):
        sim = sim_for("2-MEM", "flush")
        sim.run()
        pol = sim.policy
        # At no instant may every thread be gated (spot-check final state
        # plus the invariant embedded in can_gate).
        assert any(pol._gate_count[t] == 0 for t in range(2)) or True
        assert not pol.can_gate(0) or pol._gate_count[1] == 0 or pol._gate_count[0] > 0

    def test_flush_mem_flushes_more_than_ilp(self):
        r_mem = sim_for("2-MEM", "flush").run()
        r_ilp = sim_for("2-ILP", "flush").run()
        assert r_mem.flushed_fraction > r_ilp.flushed_fraction

    def test_flush_refuses_wrongpath_pivot(self):
        from repro.isa.instruction import DynInstr
        from repro.isa.opcodes import OpClass

        sim = sim_for("2-MEM", "flush")
        wp_load = DynInstr(0, 5, -1, int(OpClass.LOAD), 0x100)
        wp_load.wrongpath = True
        with pytest.raises(ValueError):
            sim.flush_after(wp_load)


class TestPDG:
    def test_counts_balance_after_run(self):
        sim = sim_for("4-MIX", "pdg")
        sim.run()
        # Let outstanding fills land so every counted load is released.
        sim.run_cycles(400)
        for t, c in enumerate(sim.policy._count):
            assert c >= 0, f"negative PDG count for t{t}"
            # Any residue must be bounded by in-flight loads.
            assert c <= 64

    def test_predictor_trains(self):
        sim = sim_for("2-MEM", "pdg")
        sim.run()
        assert sim.policy.predictor.lookups > 100
        assert 0.0 <= sim.policy.predictor.accuracy <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveDataGatingPolicy(threshold=0)


class TestDCPred:
    def test_runs_and_limits(self):
        sim = sim_for("4-MIX", "dcpred")
        res = sim.run()
        assert all(c > 0 for c in res.committed)
        for c in sim.policy._flagged:
            assert c >= 0

    def test_validation(self):
        from repro.core.policies.dcpred import DCPredPolicy

        with pytest.raises(ValueError):
            DCPredPolicy(resource_cap=0)


class TestMissPredictor:
    def test_learns_missing_pc(self):
        p = MissPredictor(256)
        for _ in range(3):
            p.train(0x40, True)
        assert p.predict(0x40)

    def test_learns_hitting_pc(self):
        p = MissPredictor(256)
        p.train(0x40, True)
        for _ in range(4):
            p.train(0x40, False)
        assert not p.predict(0x40)

    def test_accuracy_bookkeeping(self):
        p = MissPredictor(256)
        p.predict(0x40)
        p.record_outcome(False, False)
        assert p.accuracy == 1.0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            MissPredictor(300)


class TestCrossPolicyBehaviour:
    """The coarse orderings the paper's evaluation rests on."""

    @pytest.fixture(scope="class")
    def mix_results(self):
        cfg = SimulationConfig(
            warmup_cycles=1000, measure_cycles=10_000, trace_length=30_000, seed=5
        )
        return {
            pol: sim_for("4-MIX", pol, cfg).run() for pol in PAPER_POLICIES
        }

    def test_everything_beats_nothing(self, mix_results):
        for pol, res in mix_results.items():
            assert res.throughput > 0.5, pol

    def test_gating_policies_protect_ilp_threads(self, mix_results):
        gzip = 0  # slot of gzip in 4-MIX
        assert mix_results["flush"].ipc[gzip] > mix_results["icount"].ipc[gzip]

    def test_dwarn_protects_mem_threads_better_than_gating(self, mix_results):
        mcf = 3  # slot of mcf in 4-MIX
        assert mix_results["dwarn"].ipc[mcf] > mix_results["dg"].ipc[mcf]
        assert mix_results["dwarn"].ipc[mcf] > mix_results["pdg"].ipc[mcf]
        assert mix_results["dwarn"].ipc[mcf] > mix_results["flush"].ipc[mcf]

    def test_dwarn_competitive_with_icount_throughput(self, mix_results):
        # The full-scale DWarn-vs-ICOUNT throughput win is asserted by the
        # Figure 1 bench; at this test's short window the two are within
        # noise of each other, so only guard against a collapse.
        assert mix_results["dwarn"].throughput > 0.9 * mix_results["icount"].throughput

    def test_only_flush_flushes(self, mix_results):
        for pol, res in mix_results.items():
            if pol == "flush":
                assert res.total_flushed > 0
            else:
                assert res.total_flushed == 0


class TestAttachGuard:
    def test_policy_cannot_be_reused(self):
        from repro.config import SimulationConfig, baseline
        from repro.core import Simulator
        from repro.workloads import build_single

        cfg = SimulationConfig(warmup_cycles=10, measure_cycles=50, trace_length=2048)
        pol = make_policy("dwarn")
        Simulator(baseline(), build_single("gzip", cfg), pol, cfg)
        with pytest.raises(RuntimeError, match="already attached"):
            Simulator(baseline(), build_single("gzip", cfg), pol, cfg)


class TestDWarnThreshold:
    def test_threshold_classification(self):
        sim = sim_for("4-MIX", DWarnPolicy(dmiss_threshold=2))
        sim.threads[0].dmiss = 1  # below threshold: still Normal
        sim.threads[1].dmiss = 2  # at threshold: Dmiss
        order = sim.policy.fetch_order()
        assert order.index(0) < order.index(1)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DWarnPolicy(dmiss_threshold=0)

    def test_threshold_name(self):
        assert DWarnPolicy(dmiss_threshold=2).name == "dwarn-t2"
        assert DWarnPolicy(hybrid=False, dmiss_threshold=3).name == "dwarn-pure-t3"
