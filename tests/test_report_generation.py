"""End-to-end report generation at micro scale (slow)."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.experiments import ExperimentRunner
from repro.experiments.report import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS, generate_report

MICRO = SimulationConfig(warmup_cycles=100, measure_cycles=600, trace_length=3000, seed=55)


@pytest.mark.slow
def test_generate_report_writes_all_sections(tmp_path):
    runner = ExperimentRunner("baseline", MICRO, cache_dir=tmp_path / "cache")
    out = generate_report(tmp_path / "EXP.md", runner, verbose=False)
    text = out.read_text()
    assert "Reproduction checks:" in text
    for module, _ in ALL_EXPERIMENTS + EXTENSION_EXPERIMENTS:
        # every experiment contributed a section
        assert f"### " in text
    for title_fragment in ("Table 2(a)", "Figure 1", "Figure 2", "Figure 3",
                           "Table 4", "Figure 4", "Figure 5", "seed robustness"):
        assert title_fragment in text, title_fragment
