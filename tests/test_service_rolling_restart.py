"""Rolling-restart drain correctness through the router, via the load
harness.

The scale-out acceptance criterion: with clients continuously submitting a
mixed-duplicate stream through a 2-shard router, restarting *both* shards
mid-run (SIGTERM drain -> relaunch at the same address) must lose nothing
and duplicate nothing. ``dwarn-sim loadtest --rolling-restart`` is that
scenario end to end — harness-owned shards so each can be relaunched on
its original port — and its ``BENCH_service.json`` report carries the
evidence: per-key result sets of size one (exactly-once), zero failed
jobs, and a restart count covering every shard.

This runs a real fleet (3 daemons + threads of real HTTP clients), so it
is the most expensive test in tier-1 — kept to ~80 tiny jobs.
"""

from __future__ import annotations

import json

import pytest

from repro.service.loadtest import BENCH_SCHEMA, LoadTestConfig, build_spec_pool, run_loadtest


class TestRollingRestartDrain:
    def test_restart_both_shards_exactly_once(self, tmp_path):
        out = tmp_path / "bench.json"
        cfg = LoadTestConfig(
            shards=2,
            clients=8,
            stream_clients=1,
            jobs=80,
            unique=12,
            rolling_restart=True,
            out=str(out),
            state_dir=str(tmp_path / "state"),
            seed=7,
        )
        assert run_loadtest(cfg) == 0

        report = json.loads(out.read_text())
        assert report["schema"] == BENCH_SCHEMA
        assert report["jobs"]["requested"] == 80
        assert report["jobs"]["completed"] == 80
        assert report["jobs"]["failed"] == 0
        assert report["dedup"]["exactly_once"] is True
        assert report["dedup"]["unique_specs"] == 12
        assert report["dedup"]["distinct_results"] == 12
        assert report["rolling_restart"] == {"enabled": True, "restarts": 2}
        assert set(report["per_shard"]) == {"s0", "s1"}
        assert report["latency"]["p95"] >= report["latency"]["p50"] >= 0.0
        assert report["throughput"]["jobs_per_min"] > 0

        # Every submission was accounted to a source, and the shards'
        # result stores served repeats (coalesced duplicates report their
        # underlying job's source, so "simulated" counts submissions, not
        # executions — exactly-once above is the execution-count proof).
        by_source = report["by_source"]
        assert sum(by_source.values()) == 80
        assert by_source.get("store", 0) > 0


class TestHarnessConfig:
    def test_spec_pool_is_deterministic_and_unique(self):
        cfg = LoadTestConfig(unique=24)
        pool = build_spec_pool(cfg)
        assert pool == build_spec_pool(cfg)
        assert len(pool) == 24
        keys = {(s["workload"], s["policy"], s["seed"]) for s in pool}
        assert len(keys) == 24

    def test_external_router_refuses_rolling_restart(self, capsys):
        cfg = LoadTestConfig(router_url="http://127.0.0.1:1", rolling_restart=True)
        assert run_loadtest(cfg) == 2
        assert "rolling-restart" in capsys.readouterr().err

    def test_bad_router_url_rejected(self):
        cfg = LoadTestConfig(router_url="nonsense")
        assert run_loadtest(cfg) == 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
