"""Unit tests for the perfguard comparison logic (pure, no timing).

The expensive collection paths (digests, speed, sweep) run in CI's
perf-smoke job; here we pin the *decision* logic: what counts as digest
drift, a speed regression, a sweep regression, and a failed service
load-test report.
"""

from __future__ import annotations

import json

from repro.utils.perfguard import check_service_bench, compare, main


def _base(**overrides):
    data = {
        "digests": {"4-MIX/dwarn": {"cycles": 1500, "committed": [10, 20]}},
        "speed": {"normalized_score": 100.0},
        "sweep": {"normalized_sweep_secs": 50.0},
    }
    data.update(overrides)
    return data


class TestCompareSweep:
    def test_identical_passes(self):
        assert compare(_base(), _base(), tolerance=0.20) == []

    def test_sweep_within_tolerance_passes(self):
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.35})
        assert compare(_base(), cur, tolerance=0.20) == []  # 2x tol = 40%

    def test_sweep_regression_fails(self):
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.5})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1
        assert "sweep regression" in failures[0]

    def test_sweep_improvement_passes(self):
        cur = _base(sweep={"normalized_sweep_secs": 10.0})
        assert compare(_base(), cur, tolerance=0.20) == []

    def test_baseline_sweep_tolerance_override(self):
        base = _base(sweep_tolerance=0.05)
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.2})
        failures = compare(base, cur, tolerance=0.20)
        assert len(failures) == 1 and "5%" in failures[0]

    def test_missing_sweep_sections_are_ignored(self):
        # Old baselines (no sweep) and --skip-sweep runs must not fail.
        base_no_sweep = _base()
        del base_no_sweep["sweep"]
        assert compare(base_no_sweep, _base(), tolerance=0.20) == []
        cur_no_sweep = _base()
        del cur_no_sweep["sweep"]
        assert compare(_base(), cur_no_sweep, tolerance=0.20) == []


class TestCompareExisting:
    def test_digest_drift_fails(self):
        cur = _base(digests={"4-MIX/dwarn": {"cycles": 1501, "committed": [10, 20]}})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1 and "digest drift" in failures[0]

    def test_speed_regression_fails(self):
        cur = _base(speed={"normalized_score": 70.0})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1 and "speed regression" in failures[0]

    def test_extra_service_section_in_baseline_is_ignored(self):
        # The service floor is refereed by --service-bench, never by the
        # simulation-side compare() — an annotated baseline must not trip it.
        base = _base(service={"min_jobs_per_min": 1000.0})
        assert compare(base, _base(), tolerance=0.20) == []


def _resume(**overrides):
    data = {
        "resume_speedup": 1.8,
        "checkpoint_cycle": 10_100,
        "total_cycles": 20_200,
        "min_speedup": 1.3,
    }
    data.update(overrides)
    return data


class TestCompareResume:
    def test_speedup_above_floor_passes(self):
        base = _base(resume=_resume())
        cur = _base(resume=_resume(resume_speedup=1.35))
        assert compare(base, cur, tolerance=0.20) == []

    def test_speedup_below_floor_fails(self):
        base = _base(resume=_resume())
        cur = _base(resume=_resume(resume_speedup=1.1))
        failures = compare(base, cur, tolerance=0.20)
        assert len(failures) == 1
        assert "resume speedup" in failures[0] and "1.3x floor" in failures[0]

    def test_baseline_floor_override(self):
        base = _base(resume=_resume(min_speedup=2.0))
        cur = _base(resume=_resume(resume_speedup=1.8))
        failures = compare(base, cur, tolerance=0.20)
        assert len(failures) == 1 and "2.0x floor" in failures[0]

    def test_checkpoint_below_midpoint_fails(self):
        # A capture drifting toward cycle 0 would make the speedup gate
        # vacuous, so the midpoint requirement is checked independently.
        base = _base(resume=_resume())
        cur = _base(resume=_resume(resume_speedup=3.0, checkpoint_cycle=4000))
        failures = compare(base, cur, tolerance=0.20)
        assert len(failures) == 1 and "50%" in failures[0]

    def test_missing_resume_sections_are_ignored(self):
        # Old baselines (no resume section) and --skip-speed runs must pass.
        assert compare(_base(resume=_resume()), _base(), tolerance=0.20) == []
        assert compare(_base(), _base(resume=_resume()), tolerance=0.20) == []


def _report(**overrides):
    data = {
        "schema": 1,
        "jobs": {"requested": 1000, "completed": 1000, "failed": 0},
        "throughput": {"jobs_per_min": 5000.0, "jobs_per_sec": 83.3},
        "latency": {"p50": 0.1, "p95": 0.8},
        "dedup": {"unique_specs": 24, "distinct_results": 24, "exactly_once": True},
    }
    data.update(overrides)
    return data


class TestServiceBench:
    BASE = {"service": {"min_jobs_per_min": 1000.0}}

    def test_clean_report_passes(self):
        assert check_service_bench(_report(), self.BASE) == []

    def test_throughput_floor(self):
        failures = check_service_bench(
            _report(throughput={"jobs_per_min": 900.0}), self.BASE
        )
        assert len(failures) == 1 and "below floor 1000" in failures[0]

    def test_duplicate_results_fail(self):
        failures = check_service_bench(
            _report(dedup={"unique_specs": 24, "distinct_results": 25,
                           "exactly_once": False}),
            self.BASE,
        )
        assert len(failures) == 1 and "exactly-once" in failures[0]

    def test_lost_jobs_fail(self):
        failures = check_service_bench(
            _report(jobs={"requested": 1000, "completed": 997, "failed": 3}),
            self.BASE,
        )
        assert len(failures) == 2  # lost jobs AND incomplete count
        assert any("lost 3 job" in f for f in failures)
        assert any("997/1000" in f for f in failures)

    def test_default_floor_when_baseline_has_no_service_section(self):
        failures = check_service_bench(
            _report(throughput={"jobs_per_min": 500.0}), {}
        )
        assert len(failures) == 1 and "1000" in failures[0]

    def test_optional_p95_ceiling(self):
        base = {"service": {"min_jobs_per_min": 1000.0, "max_p95_secs": 0.5}}
        failures = check_service_bench(_report(), base)
        assert len(failures) == 1 and "p95" in failures[0]
        assert check_service_bench(_report(latency={"p50": 0.1, "p95": 0.4}), base) == []

    def test_floor_zero_disarms_throughput_gate(self):
        # What the CI referee leg uses on shared runners.
        base = {"service": {"min_jobs_per_min": 0}}
        assert check_service_bench(
            _report(throughput={"jobs_per_min": 1.0}), base
        ) == []


class TestServiceBenchCli:
    def _write(self, tmp_path, report, baseline):
        rp = tmp_path / "BENCH_service.json"
        rp.write_text(json.dumps(report))
        bp = tmp_path / "baselines.json"
        bp.write_text(json.dumps(baseline))
        return rp, bp

    def test_passing_report_exits_zero(self, tmp_path, capsys):
        rp, bp = self._write(tmp_path, _report(), TestServiceBench.BASE)
        assert main(["--service-bench", str(rp), "--baseline", str(bp)]) == 0
        out = capsys.readouterr().out
        assert "perfguard OK" in out and "1000 jobs/min" in out

    def test_failing_report_exits_one(self, tmp_path, capsys):
        rp, bp = self._write(
            tmp_path,
            _report(throughput={"jobs_per_min": 10.0}),
            TestServiceBench.BASE,
        )
        assert main(["--service-bench", str(rp), "--baseline", str(bp)]) == 1
        assert "below floor" in capsys.readouterr().err

    def test_missing_report_is_invocation_error(self, tmp_path, capsys):
        bp = tmp_path / "baselines.json"
        bp.write_text(json.dumps(TestServiceBench.BASE))
        missing = tmp_path / "nope.json"
        assert main(["--service-bench", str(missing), "--baseline", str(bp)]) == 2
        assert "not found" in capsys.readouterr().err
