"""Unit tests for the perfguard comparison logic (pure, no timing).

The expensive collection paths (digests, speed, sweep) run in CI's
perf-smoke job; here we pin the *decision* logic: what counts as digest
drift, a speed regression, and a sweep regression.
"""

from __future__ import annotations

from repro.utils.perfguard import compare


def _base(**overrides):
    data = {
        "digests": {"4-MIX/dwarn": {"cycles": 1500, "committed": [10, 20]}},
        "speed": {"normalized_score": 100.0},
        "sweep": {"normalized_sweep_secs": 50.0},
    }
    data.update(overrides)
    return data


class TestCompareSweep:
    def test_identical_passes(self):
        assert compare(_base(), _base(), tolerance=0.20) == []

    def test_sweep_within_tolerance_passes(self):
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.35})
        assert compare(_base(), cur, tolerance=0.20) == []  # 2x tol = 40%

    def test_sweep_regression_fails(self):
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.5})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1
        assert "sweep regression" in failures[0]

    def test_sweep_improvement_passes(self):
        cur = _base(sweep={"normalized_sweep_secs": 10.0})
        assert compare(_base(), cur, tolerance=0.20) == []

    def test_baseline_sweep_tolerance_override(self):
        base = _base(sweep_tolerance=0.05)
        cur = _base(sweep={"normalized_sweep_secs": 50.0 * 1.2})
        failures = compare(base, cur, tolerance=0.20)
        assert len(failures) == 1 and "5%" in failures[0]

    def test_missing_sweep_sections_are_ignored(self):
        # Old baselines (no sweep) and --skip-sweep runs must not fail.
        base_no_sweep = _base()
        del base_no_sweep["sweep"]
        assert compare(base_no_sweep, _base(), tolerance=0.20) == []
        cur_no_sweep = _base()
        del cur_no_sweep["sweep"]
        assert compare(_base(), cur_no_sweep, tolerance=0.20) == []


class TestCompareExisting:
    def test_digest_drift_fails(self):
        cur = _base(digests={"4-MIX/dwarn": {"cycles": 1501, "committed": [10, 20]}})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1 and "digest drift" in failures[0]

    def test_speed_regression_fails(self):
        cur = _base(speed={"normalized_score": 70.0})
        failures = compare(_base(), cur, tolerance=0.20)
        assert len(failures) == 1 and "speed regression" in failures[0]
