"""Meta-policy: dynamic selection correctness, determinism, engine parity.

The meta policy switches the active fetch policy at interval boundaries
from architecture-visible features only, so for a fixed (trace, seed,
interval) the decision sequence — and therefore the whole simulation — must
be deterministic and identical across the staged and fused engines (the
switch path exercises ``order_dirty`` re-reads and the shared gate counts).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.policies import POLICIES, is_policy_name
from repro.core.policies.meta import (
    DEFAULT_HYSTERESIS,
    DEFAULT_INTERVAL,
    MetaPolicy,
    canonical_policy_name,
    meta_policy_name,
    parse_meta_name,
)
from repro.workloads import build_programs, get_workload


def _run(workload: str, policy, simcfg: SimulationConfig, fused: bool):
    programs = build_programs(get_workload(workload), simcfg)
    pol = make_policy(policy) if isinstance(policy, str) else policy
    sim = Simulator(baseline(), programs, pol, simcfg)
    if not fused:
        sim._step = sim._step  # pin => staged reference path
    return sim.run(), pol


@pytest.fixture(scope="module")
def simcfg() -> SimulationConfig:
    return SimulationConfig(
        warmup_cycles=200, measure_cycles=1_500, trace_length=6_000, seed=777
    )


def test_meta_registered():
    assert "meta" in POLICIES
    assert isinstance(make_policy("meta"), MetaPolicy)


def test_meta_is_deterministic(simcfg):
    a, _ = _run("2-MEM", "meta", simcfg, fused=True)
    b, _ = _run("2-MEM", "meta", simcfg, fused=True)
    assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_meta_staged_fused_parity(simcfg):
    fused, pf = _run("2-MEM", "meta", simcfg, fused=True)
    staged, ps = _run("2-MEM", "meta", simcfg, fused=False)
    assert dataclasses.asdict(fused) == dataclasses.asdict(staged)
    # The switch logs themselves must agree, not just the end state.
    assert pf.switches == ps.switches


def test_meta_switches_on_memory_pressure(simcfg):
    """On a MEM-bound mix the features must move the selector off its
    starting policy at least once."""
    _, pol = _run("2-MEM", "meta", simcfg, fused=True)
    assert len(pol.switches) > 0
    cycle, src, dst = pol.switches[0]
    assert cycle > 0 and src != dst
    assert {src, dst} <= set(POLICIES)


def test_meta_knobs_change_behavior(simcfg):
    """A different interval legitimately changes the decision sequence."""
    _, coarse = _run("2-MEM", MetaPolicy(interval=1024, hysteresis=1), simcfg, True)
    _, fine = _run("2-MEM", MetaPolicy(interval=64, hysteresis=1), simcfg, True)
    assert [c for c, _, _ in coarse.switches] != [c for c, _, _ in fine.switches]


# ---------------------------------------------------------------------------
# name grammar


def test_parameterized_spellings_resolve():
    pol = make_policy("meta-w128-h1")
    assert isinstance(pol, MetaPolicy)
    assert pol.interval == 128 and pol.hysteresis == 1
    assert isinstance(make_policy("meta-w512"), MetaPolicy)
    assert isinstance(make_policy("meta-h3"), MetaPolicy)


def test_parse_meta_name():
    assert parse_meta_name("meta") == (DEFAULT_INTERVAL, DEFAULT_HYSTERESIS)
    assert parse_meta_name("meta-w128-h1") == (128, 1)
    assert parse_meta_name("dwarn") is None
    assert parse_meta_name("meta-x9") is None
    with pytest.raises(ValueError):
        parse_meta_name("meta-w1")  # interval below the floor
    with pytest.raises(ValueError):
        parse_meta_name("meta-h0")  # hysteresis below the floor


def test_canonical_policy_name():
    default = meta_policy_name(DEFAULT_INTERVAL, DEFAULT_HYSTERESIS)
    assert canonical_policy_name(default) == "meta"
    assert canonical_policy_name("meta") == "meta"
    assert canonical_policy_name("meta-w128") == "meta-w128-h2"
    assert canonical_policy_name("dwarn") == "dwarn"


def test_is_policy_name():
    assert is_policy_name("meta")
    assert is_policy_name("meta-w128-h1")
    assert is_policy_name("dwarn")
    assert not is_policy_name("meta-w1")  # parseable shape, bad range
    assert not is_policy_name("bogus")


def test_unknown_policy_error_mentions_meta_grammar():
    with pytest.raises(KeyError, match="meta spelling"):
        make_policy("bogus")


def test_knob_ranges_enforced():
    with pytest.raises(ValueError):
        MetaPolicy(interval=1)
    with pytest.raises(ValueError):
        MetaPolicy(hysteresis=0)
