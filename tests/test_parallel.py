"""Tests for the process-pool sweep executor."""

from __future__ import annotations


from repro.config import SimulationConfig
from repro.experiments import ExperimentRunner, prefetch, run_pairs, sweep_pairs

TINY = SimulationConfig(warmup_cycles=100, measure_cycles=700, trace_length=4000, seed=3)


class TestSweepPairs:
    def test_baseline_pairs(self):
        runner = ExperimentRunner("baseline", TINY)
        pairs = sweep_pairs(runner, ("icount", "dwarn"))
        wls = {wl for wl, _ in pairs}
        assert "8-MEM" in wls and "2-ILP" in wls
        # 12 workloads x 2 policies + 12 single baselines
        assert len(pairs) == 12 * 2 + 12

    def test_small_machine_pairs(self):
        runner = ExperimentRunner("small", TINY)
        pairs = sweep_pairs(runner, ("icount",), include_singles=False)
        assert {wl for wl, _ in pairs} == {
            "2-ILP", "2-MIX", "2-MEM", "4-ILP", "4-MIX", "4-MEM",
        }


class TestRunPairs:
    def test_serial_path(self):
        runner = ExperimentRunner("baseline", TINY)
        out = run_pairs(runner.machine, TINY, [("2-ILP", "icount")], processes=1)
        assert len(out) == 1
        wl, pol, res = out[0]
        assert (wl, pol) == ("2-ILP", "icount")
        assert res.throughput > 0

    def test_parallel_matches_serial(self):
        runner = ExperimentRunner("baseline", TINY)
        pairs = [("2-ILP", "icount"), ("2-MIX", "dwarn"), ("gzip", "icount")]
        serial = run_pairs(runner.machine, TINY, pairs, processes=1)
        parallel = run_pairs(runner.machine, TINY, pairs, processes=2)
        s = {(w, p): r.committed for w, p, r in serial}
        q = {(w, p): r.committed for w, p, r in parallel}
        assert s == q  # determinism across process boundaries

    def test_empty(self):
        runner = ExperimentRunner("baseline", TINY)
        assert run_pairs(runner.machine, TINY, [], processes=2) == []


class TestPrefetch:
    def test_fills_caches(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        n = prefetch(runner, [("2-ILP", "icount"), ("2-ILP", "dwarn")], processes=2)
        assert n == 2
        before = runner.simulations_run
        runner.run("2-ILP", "icount")  # cache hit
        assert runner.simulations_run == before

    def test_skips_cached(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        runner.run("2-ILP", "icount")
        n = prefetch(runner, [("2-ILP", "icount")], processes=2)
        assert n == 0

    def test_dedupes(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        n = prefetch(runner, [("2-MIX", "flush")] * 3, processes=2)
        assert n == 1

    def test_prefetched_equals_direct(self, tmp_path):
        r1 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "a")
        prefetch(r1, [("2-MEM", "dwarn")], processes=2)
        via_pool = r1.run("2-MEM", "dwarn")
        r2 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "b")
        direct = r2.run("2-MEM", "dwarn")
        assert via_pool.committed == direct.committed
