"""Tests for the process-pool sweep executor: scheduling, streaming
completion, fault tolerance (worker death, failing pairs), the persisted
cost model, and prefetch cache semantics."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SimulationConfig
from repro.experiments import (
    ExperimentRunner,
    SweepCostModel,
    SweepError,
    prefetch,
    run_pairs,
    sweep_pairs,
)
from repro.experiments.parallel import _simulate_one

TINY = SimulationConfig(warmup_cycles=100, measure_cycles=700, trace_length=4000, seed=3)

_KILL_FLAG_ENV = "DWARN_TEST_KILL_FLAG"
_KILL_PAIR_ENV = "DWARN_TEST_KILL_WL"


def _killing_worker(machine, simcfg, workload, policy, trace_cache_dir=None):
    """Worker that hard-kills its process (no exception, no cleanup — like
    an OOM kill) the first time it sees the designated workload."""
    flag = os.environ.get(_KILL_FLAG_ENV)
    if flag and os.path.exists(flag) and workload == os.environ.get(_KILL_PAIR_ENV):
        os.remove(flag)  # once only: the retry must succeed
        os._exit(42)
    return _simulate_one(machine, simcfg, workload, policy, trace_cache_dir)


def _failing_worker(machine, simcfg, workload, policy, trace_cache_dir=None):
    """Worker that deterministically raises for one (workload, policy)."""
    if (workload, policy) == ("2-MIX", "dwarn"):
        raise ValueError("injected failure")
    return _simulate_one(machine, simcfg, workload, policy, trace_cache_dir)


def _raise_once_worker(machine, simcfg, workload, policy, trace_cache_dir=None):
    """Worker that raises (cleanly, unlike a kill) while the flag file
    exists — a transient failure the bounded retry must absorb."""
    flag = os.environ.get(_KILL_FLAG_ENV)
    if flag and os.path.exists(flag) and workload == os.environ.get(_KILL_PAIR_ENV):
        os.remove(flag)
        raise RuntimeError("transient failure")
    return _simulate_one(machine, simcfg, workload, policy, trace_cache_dir)


class TestSweepPairs:
    def test_baseline_pairs(self):
        runner = ExperimentRunner("baseline", TINY)
        pairs = sweep_pairs(runner, ("icount", "dwarn"))
        wls = {wl for wl, _ in pairs}
        assert "8-MEM" in wls and "2-ILP" in wls
        # 12 workloads x 2 policies + 12 single baselines
        assert len(pairs) == 12 * 2 + 12

    def test_small_machine_pairs(self):
        runner = ExperimentRunner("small", TINY)
        pairs = sweep_pairs(runner, ("icount",), include_singles=False)
        assert {wl for wl, _ in pairs} == {
            "2-ILP", "2-MIX", "2-MEM", "4-ILP", "4-MIX", "4-MEM",
        }


class TestRunPairs:
    def test_serial_path(self):
        runner = ExperimentRunner("baseline", TINY)
        out = run_pairs(runner.machine, TINY, [("2-ILP", "icount")], processes=1)
        assert len(out) == 1
        wl, pol, res = out[0]
        assert (wl, pol) == ("2-ILP", "icount")
        assert res.throughput > 0

    def test_parallel_matches_serial(self):
        runner = ExperimentRunner("baseline", TINY)
        pairs = [("2-ILP", "icount"), ("2-MIX", "dwarn"), ("gzip", "icount")]
        serial = run_pairs(runner.machine, TINY, pairs, processes=1)
        parallel = run_pairs(runner.machine, TINY, pairs, processes=2)
        s = {(w, p): r.committed for w, p, r in serial}
        q = {(w, p): r.committed for w, p, r in parallel}
        assert s == q  # determinism across process boundaries

    def test_empty(self):
        runner = ExperimentRunner("baseline", TINY)
        assert run_pairs(runner.machine, TINY, [], processes=2) == []


class TestPrefetch:
    def test_fills_caches(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        n = prefetch(runner, [("2-ILP", "icount"), ("2-ILP", "dwarn")], processes=2)
        assert n == 2
        before = runner.simulations_run
        runner.run("2-ILP", "icount")  # cache hit
        assert runner.simulations_run == before

    def test_skips_cached(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        runner.run("2-ILP", "icount")
        n = prefetch(runner, [("2-ILP", "icount")], processes=2)
        assert n == 0

    def test_dedupes(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        n = prefetch(runner, [("2-MIX", "flush")] * 3, processes=2)
        assert n == 1

    def test_prefetched_equals_direct(self, tmp_path):
        r1 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "a")
        prefetch(r1, [("2-MEM", "dwarn")], processes=2)
        via_pool = r1.run("2-MEM", "dwarn")
        r2 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "b")
        direct = r2.run("2-MEM", "dwarn")
        assert via_pool.committed == direct.committed

    def test_disk_hits_installed_into_memory_cache(self, tmp_path):
        # A pair already on disk must be parsed once and *kept* (the old
        # code parsed it in the skip-check, discarded it, and re-parsed on
        # every later runner.run).
        r1 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        r1.run("2-ILP", "icount")
        r2 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        executed = prefetch(r2, [("2-ILP", "icount")], processes=2)
        assert executed == 0
        key = r2._key("2-ILP", "icount")
        assert key in r2._mem_cache
        assert r2._mem_cache[key].committed == r1.run("2-ILP", "icount").committed

    def test_prefetch_with_trace_cache_matches(self, tmp_path):
        from repro.trace import clear_trace_cache

        # Forked workers inherit this process's in-memory trace memo; clear
        # it so the workers actually exercise the generate-and-persist path.
        clear_trace_cache()
        r1 = ExperimentRunner(
            "baseline", TINY, cache_dir=tmp_path / "a",
            trace_cache_dir=tmp_path / "traces",
        )
        prefetch(r1, [("2-MEM", "dwarn")], processes=2)
        r2 = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "b")
        assert r1.run("2-MEM", "dwarn").committed == r2.run("2-MEM", "dwarn").committed
        # Workers persisted their generated traces for the next sweep.
        assert r1.trace_cache.stats()["entries"] > 0

    def test_seed_sweep_feeds_run_multi(self, tmp_path):
        from repro.experiments import prefetch_seed_sweep

        seeds = (111, 222)
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        n = prefetch_seed_sweep(
            runner, [("2-ILP", "icount")], seeds, processes=2
        )
        assert n == len(seeds)
        before = runner.simulations_run
        multi = runner.run_multi("2-ILP", "icount", seeds)  # all cache hits
        assert runner.simulations_run == before
        assert len(multi.throughputs) == len(seeds)
        # Parity with an uncached runner, per seed.
        fresh = ExperimentRunner("baseline", TINY, cache_dir=tmp_path / "fresh")
        ref = fresh.run_multi("2-ILP", "icount", seeds)
        assert multi.throughputs == ref.throughputs

    def test_progress_callback_streams(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        seen = []
        prefetch(
            runner,
            [("2-ILP", "icount"), ("2-ILP", "dwarn"), ("gzip", "icount")],
            processes=2,
            progress=lambda done, total, wl, pol, secs: seen.append((done, total)),
        )
        assert [d for d, _ in seen] == [1, 2, 3]
        assert all(t == 3 for _, t in seen)

    def test_records_costs_for_later_sweeps(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY, cache_dir=tmp_path)
        prefetch(runner, [("2-ILP", "icount"), ("gzip", "icount")], processes=2)
        model = SweepCostModel.for_cache_dir(tmp_path)
        assert len(model) == 2
        measured = model.estimate("baseline", TINY, "2-ILP", "icount")
        assert 0.0 < measured < SweepCostModel.fallback(TINY, "2-ILP")


class TestFaultTolerance:
    def test_worker_death_is_retried(self, tmp_path, monkeypatch):
        """Kill one worker process mid-sweep (os._exit, as an OOM killer
        would): the pool is rebuilt, the pair re-queued, and the sweep still
        completes with correct results."""
        flag = tmp_path / "kill-once"
        flag.touch()
        monkeypatch.setenv(_KILL_FLAG_ENV, str(flag))
        monkeypatch.setenv(_KILL_PAIR_ENV, "2-MIX")
        runner = ExperimentRunner("baseline", TINY)
        pairs = [("2-ILP", "icount"), ("2-MIX", "dwarn"), ("gzip", "icount")]
        out = run_pairs(runner.machine, TINY, pairs, processes=2, worker=_killing_worker)
        assert not flag.exists()  # the kill really fired
        got = {(w, p): r.committed for w, p, r in out}
        ref = {
            (w, p): r.committed
            for w, p, r in run_pairs(runner.machine, TINY, pairs, processes=1)
        }
        assert got == ref

    def test_failing_pair_is_named(self, tmp_path):
        runner = ExperimentRunner("baseline", TINY)
        pairs = [("2-ILP", "icount"), ("2-MIX", "dwarn"), ("gzip", "icount")]
        with pytest.raises(SweepError) as exc_info:
            run_pairs(runner.machine, TINY, pairs, processes=2, worker=_failing_worker)
        err = exc_info.value
        assert (err.workload, err.policy) == ("2-MIX", "dwarn")
        assert "2-MIX" in str(err) and "dwarn" in str(err)

    def test_failing_pair_serial_path(self):
        runner = ExperimentRunner("baseline", TINY)
        with pytest.raises(SweepError) as exc_info:
            run_pairs(
                runner.machine, TINY, [("2-MIX", "dwarn")], processes=1,
                worker=_failing_worker,
            )
        assert exc_info.value.workload == "2-MIX"

    def test_failing_pair_names_seed(self):
        """Regression: the error must name the seed, not just the pair —
        a multi-seed sweep can fail under one seed and pass under others."""
        runner = ExperimentRunner("baseline", TINY)
        for processes in (1, 2):
            with pytest.raises(SweepError) as exc_info:
                run_pairs(
                    runner.machine, TINY, [("2-MIX", "dwarn")],
                    processes=processes, worker=_failing_worker,
                )
            err = exc_info.value
            assert err.seed == TINY.seed  # simcfg seed when no label given
            assert f"seed={TINY.seed}" in str(err)

    def test_failing_pair_seed_label_overrides(self):
        """An explicit seed label (prefetch_seed_sweep's case) wins."""
        runner = ExperimentRunner("baseline", TINY)
        with pytest.raises(SweepError) as exc_info:
            run_pairs(
                runner.machine, TINY, [("2-MIX", "dwarn")], processes=1,
                worker=_failing_worker, seed=909,
            )
        assert exc_info.value.seed == 909
        assert "seed=909" in str(exc_info.value)

    def test_transient_exception_is_retried(self, tmp_path, monkeypatch):
        # The worker raises exactly once: with the default retries=1 the
        # re-queued attempt succeeds and the sweep completes.
        flag = tmp_path / "raise-once"
        flag.touch()
        monkeypatch.setenv(_KILL_FLAG_ENV, str(flag))
        monkeypatch.setenv(_KILL_PAIR_ENV, "gzip")
        runner = ExperimentRunner("baseline", TINY)
        out = run_pairs(
            runner.machine, TINY, [("gzip", "icount")], processes=2,
            worker=_raise_once_worker,
        )
        assert not flag.exists()
        assert len(out) == 1 and out[0][2].throughput > 0


class TestCostModel:
    def test_fallback_scales_with_threads(self):
        assert SweepCostModel.fallback(TINY, "8-MEM") == 8 * TINY.trace_length
        assert SweepCostModel.fallback(TINY, "2-ILP") == 2 * TINY.trace_length
        assert SweepCostModel.fallback(TINY, "gzip") == 1 * TINY.trace_length

    def test_record_save_load_roundtrip(self, tmp_path):
        model = SweepCostModel.for_cache_dir(tmp_path)
        model.record("baseline", TINY, "4-MIX", "dwarn", 2.5)
        model.save()
        reloaded = SweepCostModel.for_cache_dir(tmp_path)
        assert reloaded.estimate("baseline", TINY, "4-MIX", "dwarn") == 2.5

    def test_record_uses_ema(self, tmp_path):
        model = SweepCostModel(None)
        model.record("baseline", TINY, "4-MIX", "dwarn", 2.0)
        model.record("baseline", TINY, "4-MIX", "dwarn", 4.0)
        assert model.estimate("baseline", TINY, "4-MIX", "dwarn") == 3.0

    def test_key_distinguishes_scale_and_machine(self, tmp_path):
        model = SweepCostModel(None)
        model.record("baseline", TINY, "4-MIX", "dwarn", 2.0)
        other_scale = SimulationConfig(
            warmup_cycles=100, measure_cycles=9000, trace_length=4000, seed=3
        )
        assert model.estimate("small", TINY, "4-MIX", "dwarn") == SweepCostModel.fallback(
            TINY, "4-MIX"
        )
        assert model.estimate(
            "baseline", other_scale, "4-MIX", "dwarn"
        ) == SweepCostModel.fallback(other_scale, "4-MIX")

    def test_corrupt_model_file_starts_fresh(self, tmp_path):
        path = tmp_path / SweepCostModel.FILENAME
        path.write_text("{broken json")
        model = SweepCostModel(path)
        assert len(model) == 0
        model.record("baseline", TINY, "gzip", "icount", 1.0)
        model.save()
        assert json.loads(path.read_text())["version"] == 1

    def test_longest_job_first_dispatch(self, tmp_path):
        # Seed measured costs that *invert* the fallback ordering, then watch
        # the serial scheduler (deterministic dispatch order) follow them.
        model = SweepCostModel(None)
        model.record("baseline", TINY, "gzip", "icount", 30.0)
        model.record("baseline", TINY, "2-ILP", "icount", 10.0)
        model.record("baseline", TINY, "2-MIX", "icount", 20.0)
        runner = ExperimentRunner("baseline", TINY)
        started: list[str] = []
        run_pairs(
            runner.machine, TINY,
            [("2-ILP", "icount"), ("gzip", "icount"), ("2-MIX", "icount")],
            processes=1,
            cost_model=model,
            progress=lambda done, total, wl, pol, secs: started.append(wl),
        )
        assert started == ["gzip", "2-MIX", "2-ILP"]

    def test_unknown_pairs_scheduled_before_measured(self, tmp_path):
        # Fallback costs (work units) dwarf measured seconds by construction:
        # never-measured pairs run first, which is the conservative LJF bet.
        model = SweepCostModel(None)
        model.record("baseline", TINY, "gzip", "icount", 30.0)
        runner = ExperimentRunner("baseline", TINY)
        started: list[str] = []
        run_pairs(
            runner.machine, TINY,
            [("gzip", "icount"), ("2-ILP", "icount")],
            processes=1,
            cost_model=model,
            progress=lambda done, total, wl, pol, secs: started.append(wl),
        )
        assert started == ["2-ILP", "gzip"]
