"""Pipeline-level tests: construction, invariants, determinism, squash safety."""

from __future__ import annotations


import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.workloads import build_programs, build_single, get_workload


def run_sim(workload, policy="icount", simcfg=None, machine=None):
    simcfg = simcfg or SimulationConfig(
        warmup_cycles=300, measure_cycles=1500, trace_length=6000, seed=777
    )
    machine = machine or baseline()
    if isinstance(workload, str) and "-" in workload:
        programs = build_programs(get_workload(workload), simcfg)
    else:
        programs = build_single(workload, simcfg)
    return Simulator(machine, programs, make_policy(policy), simcfg)


class TestConstruction:
    def test_rejects_empty_workload(self, tiny_simcfg):
        with pytest.raises(ValueError, match="at least one"):
            Simulator(baseline(), [], make_policy("icount"), tiny_simcfg)

    def test_rejects_too_many_threads(self, tiny_simcfg):
        programs = build_programs(get_workload("4-ILP"), tiny_simcfg)
        machine = baseline().with_proc(max_contexts=2)
        with pytest.raises(ValueError, match="max_contexts"):
            Simulator(machine, programs, make_policy("icount"), tiny_simcfg)

    def test_register_arithmetic(self, tiny_simcfg):
        sim = run_sim("4-MIX", simcfg=tiny_simcfg)
        # 384 total minus 32 architectural per context.
        assert sim.free_int_regs == 384 - 4 * 32
        assert sim.free_fp_regs == 384 - 4 * 32

    def test_prewarm_populates_caches(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        assert sim.hierarchy.dcache.occupancy() > 0
        assert sim.hierarchy.l2.occupancy() > 0

    def test_prewarm_can_be_disabled(self):
        cfg = SimulationConfig(
            warmup_cycles=10, measure_cycles=50, trace_length=2048, prewarm_caches=False
        )
        sim = run_sim("gzip", simcfg=cfg)
        assert sim.hierarchy.dcache.occupancy() == 0


class TestProgress:
    def test_commits_instructions(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        res = sim.run()
        assert res.committed[0] > 100
        assert res.ipc[0] > 0.1

    def test_all_threads_progress(self, tiny_simcfg):
        sim = run_sim("4-MIX", simcfg=tiny_simcfg)
        res = sim.run()
        assert all(c > 0 for c in res.committed)

    def test_trace_wraps_seamlessly(self):
        # Trace far shorter than the run: the thread must wrap and keep going.
        cfg = SimulationConfig(
            warmup_cycles=100, measure_cycles=4000, trace_length=1100, seed=3
        )
        sim = run_sim("gzip", simcfg=cfg)
        res = sim.run()
        assert res.committed[0] > 2000  # committed more than the trace length

    def test_commit_limit_stops_early(self):
        cfg = SimulationConfig(
            warmup_cycles=100, measure_cycles=50_000, trace_length=6000,
            commit_limit=500, seed=3,
        )
        sim = run_sim("gzip", simcfg=cfg)
        res = sim.run()
        assert res.cycles < 50_000
        assert max(res.committed) >= 500


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_simcfg):
        r1 = run_sim("2-MIX", "dwarn", tiny_simcfg).run()
        r2 = run_sim("2-MIX", "dwarn", tiny_simcfg).run()
        assert r1.committed == r2.committed
        assert r1.fetched == r2.fetched
        assert r1.ipc == r2.ipc

    def test_different_seed_differs(self):
        a = SimulationConfig(warmup_cycles=300, measure_cycles=1500, trace_length=6000, seed=1)
        b = SimulationConfig(warmup_cycles=300, measure_cycles=1500, trace_length=6000, seed=2)
        r1 = run_sim("2-MIX", "icount", a).run()
        r2 = run_sim("2-MIX", "icount", b).run()
        assert r1.committed != r2.committed


class TestInvariants:
    """Resource-conservation invariants checked after running."""

    @pytest.fixture(scope="class", params=["icount", "flush", "dwarn", "pdg"])
    def finished_sim(self, request):
        cfg = SimulationConfig(
            warmup_cycles=200, measure_cycles=2000, trace_length=6000, seed=42
        )
        sim = run_sim("4-MIX", request.param, cfg)
        sim.run()
        return sim

    def test_queue_occupancy_consistent(self, finished_sim):
        sim = finished_sim
        used = [0, 0, 0]
        from repro.isa.opcodes import QUEUE_OF

        for tc in sim.threads:
            for i in tc.rob:
                if not i.issued:
                    used[QUEUE_OF[i.op]] += 1
        sizes = sim._q_size
        for q in range(3):
            assert sim.q_free[q] + used[q] == sizes[q], f"queue {q} leaked"

    def test_register_accounting(self, finished_sim):
        sim = finished_sim
        held_int = held_fp = 0
        for tc in sim.threads:
            for i in tc.rob:
                if i.dest >= 32:
                    held_fp += 1
                elif i.dest >= 0:
                    held_int += 1
        proc = sim.machine.proc
        n = sim.num_threads
        assert sim.free_int_regs + held_int == proc.int_regs - 32 * n
        assert sim.free_fp_regs + held_fp == proc.fp_regs - 32 * n

    def test_icount_matches_preissue_population(self, finished_sim):
        sim = finished_sim
        pipe_count = [0] * sim.num_threads
        for i in sim.pipe:
            if not i.squashed:
                pipe_count[i.tid] += 1
        for tc in sim.threads:
            waiting = sum(1 for i in tc.rob if not i.issued)
            assert tc.icount == pipe_count[tc.tid] + waiting, f"icount drift t{tc.tid}"

    def test_rob_is_program_ordered(self, finished_sim):
        for tc in finished_sim.threads:
            seqs = [i.seq for i in tc.rob]
            assert seqs == sorted(seqs)

    def test_pipe_counts_match(self, finished_sim):
        sim = finished_sim
        per_tid = [0] * sim.num_threads
        for i in sim.pipe:
            per_tid[i.tid] += 1
        for tc in sim.threads:
            assert tc.pipe_count == per_tid[tc.tid]

    def test_dmiss_counters_nonnegative(self, finished_sim):
        for tc in finished_sim.threads:
            assert tc.dmiss >= 0

    def test_committed_matches_stats(self, finished_sim):
        sim = finished_sim
        for tc in sim.threads:
            assert tc.committed == sim.stats.committed[tc.tid]


class TestResult:
    def test_result_fields(self, tiny_simcfg):
        res = run_sim("2-MIX", "flush", tiny_simcfg).run()
        assert res.machine == "baseline"
        assert res.policy == "flush"
        assert res.benchmarks == ("gzip", "twolf")
        assert res.num_threads == 2
        assert res.throughput == pytest.approx(sum(res.ipc))
        assert res.cycles == 1500

    def test_summary_renders(self, tiny_simcfg):
        res = run_sim("2-MIX", "flush", tiny_simcfg).run()
        text = res.summary()
        assert "gzip" in text and "twolf" in text
        assert "throughput" in text

    def test_window_excludes_warmup(self):
        # With cache pre-warming disabled, a measurement window preceded by a
        # warm-up phase must not count the cold-start stalls that an
        # unwarmed window eats (first-touch code/data misses).
        cfg_short = SimulationConfig(
            warmup_cycles=0, measure_cycles=1000, trace_length=6000, prewarm_caches=False
        )
        cfg_warm = SimulationConfig(
            warmup_cycles=3000, measure_cycles=1000, trace_length=6000, prewarm_caches=False
        )
        cold = run_sim("gzip", "icount", cfg_short).run()
        warm = run_sim("gzip", "icount", cfg_warm).run()
        assert warm.cycles == cold.cycles == 1000
        assert warm.committed[0] > cold.committed[0]


class TestRunControls:
    def test_run_cycles_advances_exactly(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        sim.run_cycles(123)
        assert sim.cycle == 123

    def test_occupancy_shape(self, tiny_simcfg):
        sim = run_sim("2-ILP", simcfg=tiny_simcfg)
        sim.run_cycles(500)
        occ = sim.occupancy()
        assert set(occ) == {
            "free_int_regs", "free_fp_regs", "q_free", "rob", "pipe",
            "icount", "dmiss",
        }
        assert len(occ["rob"]) == 2


class TestPrewarmContents:
    def test_code_footprint_l2_resident(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        tc = sim.threads[0]
        layout = tc.trace.layout
        shift = sim.hierarchy.line_shift
        lines = range(
            layout.code_base >> shift,
            (layout.code_base + layout.footprint_bytes) >> shift,
        )
        resident = sum(sim.hierarchy.l2.contains(ln) for ln in lines)
        assert resident >= 0.9 * len(list(lines))

    def test_hot_tier_l1_resident(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        tc = sim.threads[0]
        shift = sim.hierarchy.line_shift
        for addr in tc.trace.aspace.l1_resident_lines():
            assert sim.hierarchy.dcache.contains(addr >> shift)

    def test_dtlb_prewarmed(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        tc = sim.threads[0]
        addr = tc.trace.aspace.l1_resident_lines()[0]
        assert sim.hierarchy.dtlb.access(addr)  # hit: page installed

    def test_prewarm_does_not_skew_stats(self, tiny_simcfg):
        sim = run_sim("gzip", simcfg=tiny_simcfg)
        assert sim.hierarchy.l2.accesses == 0
        assert sim.hierarchy.dtlb.accesses == 0
