"""The array-stepped vec kernel is cycle-exact and falls back cleanly.

``repro.core.vec.kernel`` gives the batch backend two stepping engines: the
per-lane reference (``LaneKernel``) and the array-stepped engine
(``ArrayKernel``) whose ``(B,)`` park/wake columns skip proven-quiescent
spans through ``Simulator.run_cycles_skip_idle``. The contract under test:

- the quiescence primitives (``quiescent_wake`` / ``advance_idle`` /
  ``run_cycles_skip_idle``) are behavior-identical to plain stepping on
  both the fused and the staged engine;
- an array-kernel batch is bit-identical to the fused per-run reference
  (hypothesis-fuzzed across policies x commit limits x seeds, mirroring
  the vec-vs-staged sweep in test_vec_batch.py);
- without numpy, ``vec_kernel="auto"`` degrades to per-lane stepping with
  identical results, and an explicit ``"array"`` is a loud error.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, baseline
from repro.core import Simulator, make_policy
from repro.core.simulator import IDLE_FOREVER
from repro.core.vec import VecBatchSimulator, run_batch
from repro.core.vec import batch as vecbatch
from repro.core.vec import kernel as veckernel
from repro.core.vec.kernel import make_kernel, resolve_kernel
from repro.workloads import build_programs, build_single, get_workload

SIX_POLICIES = ("icount", "stall", "flush", "dg", "pdg", "dwarn")


def _simcfg(**kw) -> SimulationConfig:
    base = dict(warmup_cycles=60, measure_cycles=240, trace_length=3_000, seed=424242)
    base.update(kw)
    return SimulationConfig(**base)


def _fresh_sim(workload: str, policy: str, simcfg: SimulationConfig) -> Simulator:
    try:
        programs = build_programs(get_workload(workload), simcfg)
    except KeyError:
        programs = build_single(workload, simcfg)
    return Simulator(baseline(), programs, make_policy(policy), simcfg)


# ---------------------------------------------------------------------------
# quiescence primitives
# ---------------------------------------------------------------------------


def test_skip_idle_matches_plain_stepping_fused():
    """run_cycles_skip_idle == run_cycles on the fused engine, and it
    actually skipped something (otherwise this test guards nothing)."""
    simcfg = _simcfg()
    for policy in SIX_POLICIES:
        plain = _fresh_sim("2-MEM", policy, simcfg)
        plain.run_cycles(simcfg.total_cycles)
        skip = _fresh_sim("2-MEM", policy, simcfg)
        skip.run_cycles_skip_idle(simcfg.total_cycles)
        assert skip.cycle == plain.cycle
        assert skip.stats.cycles == plain.stats.cycles
        assert list(skip.stats.committed) == list(plain.stats.committed)
        assert list(skip.stats.gated_cycles) == list(plain.stats.gated_cycles)
        assert skip.result() == plain.result(), policy
    assert skip.idle_cycles_skipped > 0
    assert plain.idle_cycles_skipped == 0


def test_skip_idle_matches_plain_stepping_staged():
    """The staged fallback of run_cycles_skip_idle (any stage override
    refuses the fused loop) honors the same contract."""
    simcfg = _simcfg()
    plain = _fresh_sim("2-MEM", "dwarn", simcfg)
    plain._step = plain._step
    assert not plain._fast_eligible()
    plain.run_cycles(simcfg.total_cycles)
    skip = _fresh_sim("2-MEM", "dwarn", simcfg)
    skip._step = skip._step
    skip.run_cycles_skip_idle(simcfg.total_cycles)
    assert skip.result() == plain.result()
    assert skip.idle_cycles_skipped > 0


def test_quiescent_wake_is_read_only_and_consistent():
    """Calling the predicate must not perturb the run, and on a quiescent
    cycle the wake must be strictly in the future."""
    simcfg = _simcfg()
    probed = _fresh_sim("2-MEM", "icount", simcfg)
    wakes = []
    for _ in range(simcfg.total_cycles):
        wakes.append(probed.quiescent_wake())
        probed.run_cycles(1)
    clean = _fresh_sim("2-MEM", "icount", simcfg)
    clean.run_cycles(simcfg.total_cycles)
    assert probed.result() == clean.result()
    assert any(w is None for w in wakes)  # busy cycles exist
    quiet = [(c, w) for c, w in enumerate(wakes) if w is not None]
    assert quiet  # idle cycles exist at this shape
    assert all(w > c for c, w in quiet)


def test_advance_idle_counts_cycles():
    simcfg = _simcfg()
    sim = _fresh_sim("2-MEM", "icount", simcfg)
    before = (sim.cycle, sim.stats.cycles)
    sim.advance_idle(0)
    assert (sim.cycle, sim.stats.cycles) == before
    sim.advance_idle(7)
    assert sim.cycle == before[0] + 7
    assert sim.stats.cycles == before[1] + 7
    assert sim.idle_cycles_skipped == 7


def test_idle_forever_sentinel_is_far_future():
    assert IDLE_FOREVER > 10**15


# ---------------------------------------------------------------------------
# kernel selection and fallback
# ---------------------------------------------------------------------------


def test_resolve_kernel_names():
    assert resolve_kernel("lane") == "lane"
    with pytest.raises(ValueError):
        resolve_kernel("bogus")
    if veckernel.HAVE_NUMPY:
        assert resolve_kernel("auto") == "array"
        assert resolve_kernel("array") == "array"
        assert make_kernel("auto", 3).name == "array"
    assert make_kernel("lane", 3).name == "lane"


def test_resolve_kernel_without_numpy(monkeypatch):
    monkeypatch.setattr(veckernel, "_np", None)
    assert resolve_kernel("auto") == "lane"
    assert resolve_kernel("lane") == "lane"
    with pytest.raises(ValueError):
        resolve_kernel("array")


def test_batch_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        VecBatchSimulator(baseline(), _simcfg(), [("2-MEM", "icount")], vec_kernel="bogus")


def test_no_numpy_auto_falls_back_to_lane_with_identical_results(monkeypatch):
    """The explicit no-numpy leg: auto degrades to per-lane stepping, same
    results bit-for-bit; asking for the array kernel is a loud error."""
    simcfg = _simcfg(commit_limit=120)
    lanes = [("2-MEM", "icount"), ("2-MEM", "dwarn"), ("4-MIX", "pdg")]
    with_np = run_batch(baseline(), simcfg, lanes, vec_kernel="auto")
    monkeypatch.setattr(vecbatch, "_np", None)
    monkeypatch.setattr(veckernel, "_np", None)
    batch = VecBatchSimulator(baseline(), simcfg, lanes, vec_kernel="auto")
    without_np = batch.run()
    assert batch.kernel_used == "lane"
    assert batch.idle_cycles_skipped == 0
    assert with_np == without_np
    with pytest.raises(ValueError):
        VecBatchSimulator(baseline(), simcfg, lanes, vec_kernel="array").run()


@pytest.mark.skipif(not veckernel.HAVE_NUMPY, reason="array kernel needs numpy")
def test_array_and_lane_kernels_agree_and_report():
    simcfg = _simcfg()
    lanes = [("4-MIX", pol) for pol in SIX_POLICIES]
    arr = VecBatchSimulator(baseline(), simcfg, lanes, vec_kernel="array")
    arr_results = arr.run()
    lane = VecBatchSimulator(baseline(), simcfg, lanes, vec_kernel="lane")
    lane_results = lane.run()
    assert arr.kernel_used == "array"
    assert lane.kernel_used == "lane"
    assert arr_results == lane_results
    assert arr.idle_cycles_skipped > 0
    assert lane.idle_cycles_skipped == 0


# ---------------------------------------------------------------------------
# pure-Python fallback of the batch accessors (satellite: previously only
# exercised indirectly)
# ---------------------------------------------------------------------------


def test_ipc_matrix_and_throughputs_pure_python_fallback(monkeypatch):
    simcfg = _simcfg()
    lanes = [("2-MEM", "icount"), ("4-MIX", "dwarn")]
    batch = VecBatchSimulator(baseline(), simcfg, lanes)
    results = batch.run()
    numpy_mat = [list(row) for row in batch.ipc_matrix()]
    numpy_thr = list(batch.throughputs())
    monkeypatch.setattr(vecbatch, "_np", None)
    mat = batch.ipc_matrix()
    thr = batch.throughputs()
    assert isinstance(mat, list) and isinstance(mat[0], list)
    assert isinstance(thr, list)
    assert len(mat) == len(lanes) and len(mat[0]) == 4
    assert mat[0][:2] == list(results[0].ipc)
    assert all(x != x for x in mat[0][2:])  # NaN padding on the 2-thread lane
    assert mat[1] == list(results[1].ipc)
    assert thr == [res.throughput for res in results]
    # Same numbers either control plane (NaN-aware compare on the padding).
    for np_row, py_row in zip(numpy_mat, mat):
        for a, b in zip(np_row, py_row):
            assert (a != a and b != b) or a == b
    assert numpy_thr == thr


def test_accessors_require_run_first():
    batch = VecBatchSimulator(baseline(), _simcfg(), [("2-MEM", "icount")])
    with pytest.raises(RuntimeError):
        batch.ipc_matrix()
    with pytest.raises(RuntimeError):
        batch.throughputs()


# ---------------------------------------------------------------------------
# hypothesis: array-kernel batch vs the *fused* reference engine
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


@pytest.mark.skipif(not veckernel.HAVE_NUMPY, reason="array kernel needs numpy")
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(["2-ILP", "2-MEM", "2-MIX", "4-MIX"]),
    policies=st.lists(st.sampled_from(SIX_POLICIES), min_size=2, max_size=4),
    seed=st.integers(min_value=0, max_value=2**20),
    warmup=st.sampled_from([0, 50]),
    cycles=st.integers(min_value=60, max_value=300),
    limit=st.sampled_from([0, 150]),
)
def test_array_kernel_matches_fused_reference(
    workload, policies, seed, warmup, cycles, limit
):
    """Randomized short runs: every array-stepped lane must equal the fused
    per-run engine run alone — crossing the park/wake columns, warm-up
    boundaries, commit-limit checkpoints, and the in-loop idle jumps."""
    simcfg = SimulationConfig(
        warmup_cycles=warmup,
        measure_cycles=cycles,
        trace_length=3_000,
        seed=seed,
        commit_limit=limit,
    )
    lanes = [(workload, pol) for pol in policies]
    results = run_batch(baseline(), simcfg, lanes, vec_kernel="array")
    for (wl, pol), got in zip(lanes, results):
        sim = _fresh_sim(wl, pol, simcfg)
        assert got == sim.run(), f"{wl}/{pol} diverged"
