"""Tests for metric math helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import (
    geometric_mean,
    harmonic_mean,
    pct_improvement,
    percentile,
    safe_div,
)


class TestHarmonicMean:
    def test_identical_values(self):
        assert harmonic_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        # Hmean(1, 1/3) = 2 / (1 + 3) = 0.5
        assert harmonic_mean([1.0, 1 / 3]) == pytest.approx(0.5)

    def test_zero_dominates(self):
        # The fairness property the paper relies on: starving one thread
        # drives the metric to zero.
        assert harmonic_mean([5.0, 0.0]) == 0.0

    def test_empty(self):
        assert harmonic_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_below_arithmetic_mean(self, vals):
        hm = harmonic_mean(vals)
        am = sum(vals) / len(vals)
        assert hm <= am + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_between_min_and_max(self, vals):
        hm = harmonic_mean(vals)
        assert min(vals) - 1e-9 <= hm <= max(vals) + 1e-9


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_zero(self):
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_ordering(self, vals):
        # HM <= GM <= AM
        hm = harmonic_mean(vals)
        gm = geometric_mean(vals)
        am = sum(vals) / len(vals)
        assert hm - 1e-9 <= gm <= am + 1e-9


class TestSafeDiv:
    def test_normal(self):
        assert safe_div(6, 3) == 2.0

    def test_zero_denominator(self):
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=math.inf) == math.inf


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        vals = [5.0, 1.0, 3.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 5.0

    def test_p95_interpolates(self):
        vals = list(range(1, 101))  # 1..100
        assert percentile(vals, 95) == pytest.approx(95.05)

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_singleton(self):
        assert percentile([7.5], 95) == 7.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_bounded_by_min_max(self, vals):
        for q in (0, 25, 50, 75, 95, 100):
            p = percentile(vals, q)
            assert min(vals) <= p <= max(vals)

    def test_matches_numpy_default(self):
        np = pytest.importorskip("numpy")
        vals = [0.3, 1.7, 2.2, 9.9, 4.1, 0.05]
        for q in (10, 50, 90, 95):
            assert percentile(vals, q) == pytest.approx(float(np.percentile(vals, q)))


class TestPctImprovement:
    def test_improvement(self):
        assert pct_improvement(1.2, 1.0) == pytest.approx(20.0)

    def test_slowdown(self):
        assert pct_improvement(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_base(self):
        assert pct_improvement(1.0, 0.0) == 0.0
