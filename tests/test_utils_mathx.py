"""Tests for metric math helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import geometric_mean, harmonic_mean, pct_improvement, safe_div


class TestHarmonicMean:
    def test_identical_values(self):
        assert harmonic_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        # Hmean(1, 1/3) = 2 / (1 + 3) = 0.5
        assert harmonic_mean([1.0, 1 / 3]) == pytest.approx(0.5)

    def test_zero_dominates(self):
        # The fairness property the paper relies on: starving one thread
        # drives the metric to zero.
        assert harmonic_mean([5.0, 0.0]) == 0.0

    def test_empty(self):
        assert harmonic_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_below_arithmetic_mean(self, vals):
        hm = harmonic_mean(vals)
        am = sum(vals) / len(vals)
        assert hm <= am + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_between_min_and_max(self, vals):
        hm = harmonic_mean(vals)
        assert min(vals) - 1e-9 <= hm <= max(vals) + 1e-9


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_zero(self):
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=8))
    def test_property_ordering(self, vals):
        # HM <= GM <= AM
        hm = harmonic_mean(vals)
        gm = geometric_mean(vals)
        am = sum(vals) / len(vals)
        assert hm - 1e-9 <= gm <= am + 1e-9


class TestSafeDiv:
    def test_normal(self):
        assert safe_div(6, 3) == 2.0

    def test_zero_denominator(self):
        assert safe_div(6, 0) == 0.0
        assert safe_div(6, 0, default=math.inf) == math.inf


class TestPctImprovement:
    def test_improvement(self):
        assert pct_improvement(1.2, 1.0) == pytest.approx(20.0)

    def test_slowdown(self):
        assert pct_improvement(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_base(self):
        assert pct_improvement(1.0, 0.0) == 0.0
