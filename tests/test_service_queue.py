"""Queue semantics: priority order, capacity/backpressure, coalescing,
config-group batching, and lease-expiry requeue.

Includes the regression tests for the Retry-After bug: the 429 hint was
computed from the median job latency even with zero completed jobs, where
the percentile of the empty sample is 0.0 — "retry in 0 seconds" turns
backpressure into a busy-loop invitation. Every ``QueueFull`` (and the
server's hint derivation) must floor at ``DEFAULT_RETRY_AFTER``.
"""

from __future__ import annotations

import math

import pytest

from repro.service.protocol import Job, JobSpec, JobState
from repro.service.queue import (
    DEFAULT_RETRY_AFTER,
    JobQueue,
    QueueFull,
    RateLimited,
    TokenBucket,
)


def _job(jid: str, workload="2-MIX", policy="dwarn", priority=0, **spec):
    return Job(
        id=jid,
        spec=JobSpec.from_dict({"workload": workload, "policy": policy, **spec}),
        priority=priority,
    )


class TestAdmission:
    def test_fifo_within_priority(self):
        q = JobQueue(8)
        for i in range(3):
            q.submit(_job(f"j{i}", seed=i + 1))
        batch = [q.next_batch(1)[0] for _ in range(3)]
        assert [j.id for j in batch] == ["j0", "j1", "j2"]

    def test_priority_order(self):
        q = JobQueue(8)
        q.submit(_job("low", seed=1, priority=5))
        q.submit(_job("high", seed=2, priority=-1))
        q.submit(_job("mid", seed=3, priority=0))
        order = [q.next_batch(1)[0].id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_capacity_raises_queue_full(self):
        q = JobQueue(2)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        with pytest.raises(QueueFull) as exc:
            q.submit(_job("c", seed=3), retry_after=2.5)
        assert exc.value.retry_after == 2.5
        assert exc.value.capacity == 2

    def test_len_counts_only_queued(self):
        q = JobQueue(4)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        assert len(q) == 2 and q.running == 0
        q.next_batch(1)
        assert len(q) == 1 and q.running == 1


class TestCoalescing:
    def test_identical_spec_coalesces(self):
        q = JobQueue(8)
        first, was = q.submit(_job("a"))
        assert not was
        second, was = q.submit(_job("b"))
        assert was
        assert second is first
        assert first.coalesced == 1
        assert len(q) == 1  # one queued execution, two submissions

    def test_coalesces_onto_running_job(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (running,) = q.next_batch(1)
        dup, was = q.submit(_job("b"))
        assert was and dup is running

    def test_duplicate_accepted_even_when_full(self):
        """Coalescing costs nothing, so a full queue still takes duplicates."""
        q = JobQueue(1)
        q.submit(_job("a"))
        dup, was = q.submit(_job("b"))
        assert was and dup.id == "a"

    def test_finish_releases_key(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        job.state = JobState.DONE
        q.finish(job)
        fresh, was = q.submit(_job("b"))
        assert not was and fresh.id == "b"


class TestBatching:
    def test_batch_groups_same_config(self):
        q = JobQueue(8)
        q.submit(_job("a", workload="2-MIX", policy="dwarn"))
        q.submit(_job("b", workload="2-MIX", policy="icount"))
        q.submit(_job("c", workload="8-MEM", policy="flush"))
        batch = q.next_batch(8)
        assert {j.id for j in batch} == {"a", "b", "c"}
        assert len(q) == 0

    def test_batch_excludes_other_config_groups(self):
        q = JobQueue(8)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=1, policy="icount"))
        q.submit(_job("other", seed=2))
        batch = q.next_batch(8)
        assert {j.id for j in batch} == {"a", "b"}
        assert [j.id for j in q.next_batch(8)] == ["other"]

    def test_batch_max_bounds_size(self):
        q = JobQueue(16)
        for i in range(6):
            q.submit(_job(f"j{i}", policy=["dwarn", "icount", "flush", "stall", "dg", "pdg"][i]))
        batch = q.next_batch(4)
        assert len(batch) == 4
        assert len(q) == 2

    def test_empty_queue_empty_batch(self):
        assert JobQueue(4).next_batch(4) == []


class TestRetryAfterFloor:
    def test_zero_completions_floor(self):
        """The regression: an empty latency sample gave retry_after=0.0."""
        exc = QueueFull(4, retry_after=0.0)
        assert exc.retry_after == DEFAULT_RETRY_AFTER

    def test_degenerate_values_clamped(self):
        for bad in (0.0, -1.0, 0.3, math.nan, math.inf, -math.inf):
            assert QueueFull(4, retry_after=bad).retry_after == DEFAULT_RETRY_AFTER

    def test_real_median_passes_through(self):
        assert QueueFull(4, retry_after=7.25).retry_after == 7.25

    def test_default_when_unspecified(self):
        assert QueueFull(4).retry_after == DEFAULT_RETRY_AFTER

    def test_server_hint_floors_without_history(self):
        """The server side of the fix: no completed jobs -> the default,
        a real latency history -> the (floored) p50."""
        from repro.service.server import ServiceConfig, SimulationService

        svc = SimulationService(ServiceConfig())
        assert svc._retry_after() == DEFAULT_RETRY_AFTER

        svc.job_manifest.record_pair("service", "2-MIX", "dwarn", "store", 0.0)
        assert svc._retry_after() == DEFAULT_RETRY_AFTER  # cache-hit-only p50=0

        for _ in range(10):
            svc.job_manifest.record_pair("service", "2-MIX", "dwarn", "simulated", 30.0)
        assert svc._retry_after() == pytest.approx(30.0)


class TestRequeue:
    def test_requeue_returns_job_to_heap(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        assert len(q) == 0 and q.running == 1
        q.requeue(job)
        assert len(q) == 1 and q.running == 0
        assert job.state == JobState.QUEUED
        assert q.next_batch(1) == [job]

    def test_requeue_ignores_terminal_jobs(self):
        """A late upload can complete a job racing the expiry scan; the
        scan's requeue must then be a no-op, not a resurrection."""
        q = JobQueue(8)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        job.state = JobState.DONE
        q.finish(job)
        q.requeue(job)
        assert len(q) == 0
        assert job.state == JobState.DONE

    def test_requeue_bypasses_capacity(self):
        """An admitted job still owns its slot: requeue past a full heap
        must not drop accepted work."""
        q = JobQueue(1)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        q.submit(_job("b", policy="icount"))  # heap full again
        q.requeue(job)
        assert len(q) == 2

    def test_requeued_job_coalesces_again(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        q.requeue(job)
        dup, was = q.submit(_job("b"))
        assert was and dup is job


class TestShutdown:
    def test_cancel_queued(self):
        q = JobQueue(8)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        (running,) = q.next_batch(1)
        cancelled = q.cancel_queued("shutdown")
        ids = {j.id for j in cancelled}
        assert running.id not in ids and len(ids) == 1
        assert all(j.state == JobState.CANCELLED for j in cancelled)
        assert all(j.error == "shutdown" for j in cancelled)
        assert len(q) == 0
        # The running job is still active (it must drain, not vanish).
        assert q.find(running.key) is running


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    """Per-client admission control (the router's ``--rate`` knob)."""

    def test_burst_then_limited(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        bucket.acquire("c1")
        bucket.acquire("c1")
        with pytest.raises(RateLimited) as exc:
            bucket.acquire("c1")
        assert exc.value.client == "c1"
        assert exc.value.retry_after == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.acquire("c1")
        bucket.acquire("c1")
        clock.now += 0.5  # 2 tokens/s * 0.5s = 1 token back
        bucket.acquire("c1")
        with pytest.raises(RateLimited):
            bucket.acquire("c1")

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.now += 3600.0  # an hour idle must not bank 36k tokens
        bucket.acquire("c1")
        bucket.acquire("c1")
        with pytest.raises(RateLimited):
            bucket.acquire("c1")

    def test_clients_are_independent(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.acquire("c1")
        bucket.acquire("c2")  # c2's bucket is untouched by c1's spend
        with pytest.raises(RateLimited):
            bucket.acquire("c1")

    def test_rate_zero_disables(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        for _ in range(1000):
            bucket.acquire("c1")
        assert bucket.remaining("c1") == pytest.approx(1.0)

    def test_bulk_cost_capped_at_burst(self):
        """A stream of 500 jobs costs at most one full burst — otherwise a
        single large request could never be admitted at any rate."""
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=30.0, clock=clock)
        bucket.acquire("c1", tokens=500.0)
        with pytest.raises(RateLimited):
            bucket.acquire("c1")

    def test_remaining_reports_level(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        assert bucket.remaining("new-client") == pytest.approx(4.0)
        bucket.acquire("new-client")
        assert bucket.remaining("new-client") == pytest.approx(3.0)

    def test_retry_after_scales_with_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        bucket.acquire("c1", tokens=4.0)
        with pytest.raises(RateLimited) as exc:
            bucket.acquire("c1", tokens=3.0)
        assert exc.value.retry_after == pytest.approx(1.5)  # 3 tokens @ 2/s

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)

    def test_prune_drops_idle_full_buckets(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        for i in range(TokenBucket.PRUNE_AT):
            bucket.acquire(f"c{i}")
        clock.now += 60.0  # everyone refills to full -> prunable
        bucket.acquire("straw")
        assert len(bucket._buckets) < TokenBucket.PRUNE_AT
