"""Queue semantics: priority order, capacity/backpressure, coalescing,
config-group batching."""

from __future__ import annotations

import pytest

from repro.service.protocol import Job, JobSpec, JobState
from repro.service.queue import JobQueue, QueueFull


def _job(jid: str, workload="2-MIX", policy="dwarn", priority=0, **spec):
    return Job(
        id=jid,
        spec=JobSpec.from_dict({"workload": workload, "policy": policy, **spec}),
        priority=priority,
    )


class TestAdmission:
    def test_fifo_within_priority(self):
        q = JobQueue(8)
        for i in range(3):
            q.submit(_job(f"j{i}", seed=i + 1))
        batch = [q.next_batch(1)[0] for _ in range(3)]
        assert [j.id for j in batch] == ["j0", "j1", "j2"]

    def test_priority_order(self):
        q = JobQueue(8)
        q.submit(_job("low", seed=1, priority=5))
        q.submit(_job("high", seed=2, priority=-1))
        q.submit(_job("mid", seed=3, priority=0))
        order = [q.next_batch(1)[0].id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_capacity_raises_queue_full(self):
        q = JobQueue(2)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        with pytest.raises(QueueFull) as exc:
            q.submit(_job("c", seed=3), retry_after=2.5)
        assert exc.value.retry_after == 2.5
        assert exc.value.capacity == 2

    def test_len_counts_only_queued(self):
        q = JobQueue(4)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        assert len(q) == 2 and q.running == 0
        q.next_batch(1)
        assert len(q) == 1 and q.running == 1


class TestCoalescing:
    def test_identical_spec_coalesces(self):
        q = JobQueue(8)
        first, was = q.submit(_job("a"))
        assert not was
        second, was = q.submit(_job("b"))
        assert was
        assert second is first
        assert first.coalesced == 1
        assert len(q) == 1  # one queued execution, two submissions

    def test_coalesces_onto_running_job(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (running,) = q.next_batch(1)
        dup, was = q.submit(_job("b"))
        assert was and dup is running

    def test_duplicate_accepted_even_when_full(self):
        """Coalescing costs nothing, so a full queue still takes duplicates."""
        q = JobQueue(1)
        q.submit(_job("a"))
        dup, was = q.submit(_job("b"))
        assert was and dup.id == "a"

    def test_finish_releases_key(self):
        q = JobQueue(8)
        q.submit(_job("a"))
        (job,) = q.next_batch(1)
        job.state = JobState.DONE
        q.finish(job)
        fresh, was = q.submit(_job("b"))
        assert not was and fresh.id == "b"


class TestBatching:
    def test_batch_groups_same_config(self):
        q = JobQueue(8)
        q.submit(_job("a", workload="2-MIX", policy="dwarn"))
        q.submit(_job("b", workload="2-MIX", policy="icount"))
        q.submit(_job("c", workload="8-MEM", policy="flush"))
        batch = q.next_batch(8)
        assert {j.id for j in batch} == {"a", "b", "c"}
        assert len(q) == 0

    def test_batch_excludes_other_config_groups(self):
        q = JobQueue(8)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=1, policy="icount"))
        q.submit(_job("other", seed=2))
        batch = q.next_batch(8)
        assert {j.id for j in batch} == {"a", "b"}
        assert [j.id for j in q.next_batch(8)] == ["other"]

    def test_batch_max_bounds_size(self):
        q = JobQueue(16)
        for i in range(6):
            q.submit(_job(f"j{i}", policy=["dwarn", "icount", "flush", "stall", "dg", "pdg"][i]))
        batch = q.next_batch(4)
        assert len(batch) == 4
        assert len(q) == 2

    def test_empty_queue_empty_batch(self):
        assert JobQueue(4).next_batch(4) == []


class TestShutdown:
    def test_cancel_queued(self):
        q = JobQueue(8)
        q.submit(_job("a", seed=1))
        q.submit(_job("b", seed=2))
        (running,) = q.next_batch(1)
        cancelled = q.cancel_queued("shutdown")
        ids = {j.id for j in cancelled}
        assert running.id not in ids and len(ids) == 1
        assert all(j.state == JobState.CANCELLED for j in cancelled)
        assert all(j.error == "shutdown" for j in cancelled)
        assert len(q) == 0
        # The running job is still active (it must drain, not vanish).
        assert q.find(running.key) is running
