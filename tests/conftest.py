"""Shared fixtures: small, fast simulation configs for unit/integration tests."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.config import SimulationConfig, baseline, deep, small

# Property tests must not flake when the machine is busy (e.g. experiment
# sweeps running in parallel): disable wall-clock deadlines globally.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def tiny_simcfg() -> SimulationConfig:
    """Very short run: enough cycles to exercise every pipeline path."""
    return SimulationConfig(
        warmup_cycles=300,
        measure_cycles=1_500,
        trace_length=6_000,
        seed=777,
    )


@pytest.fixture(scope="session")
def short_simcfg() -> SimulationConfig:
    """Short-but-meaningful run for behavioural assertions."""
    return SimulationConfig(
        warmup_cycles=1_000,
        measure_cycles=8_000,
        trace_length=20_000,
        seed=777,
    )


@pytest.fixture(scope="session")
def baseline_machine():
    return baseline()


@pytest.fixture(scope="session")
def small_machine():
    return small()


@pytest.fixture(scope="session")
def deep_machine():
    return deep()
