"""Chunked result streaming: ``POST /v1/stream`` against a single daemon
and relayed through the sharding router.

The streaming contract under test:

- one NDJSON line per submitted spec, tagged with its submission ``index``,
  arriving in *completion* order the moment each job finishes;
- duplicates inside one stream coalesce (or hit the caches) rather than
  re-simulating, and still produce their own line;
- invalid specs fail the whole stream up front with a 400 naming the
  offending index — never a half-started sweep;
- through the router, each line additionally names its serving ``shard``
  and carries the routed (prefixed) job id, with indices preserved across
  the shard partition.
"""

from __future__ import annotations

import pytest

from repro.service.client import ServiceError

from test_service_e2e import LiveServer
from test_service_router import TINY, LiveFleet, _owner


def _spec(seed, workload="2-MIX", policy="dwarn"):
    return {"workload": workload, "policy": policy, "seed": seed, **TINY}


@pytest.fixture
def server(tmp_path):
    srv = LiveServer(tmp_path)
    yield srv
    srv.kill()


@pytest.fixture
def fleet(tmp_path):
    f = LiveFleet(tmp_path)
    yield f
    f.kill()


class TestServerStream:
    def test_mixed_duplicates_stream_exactly_once_each(self, server):
        specs = [_spec(1), _spec(2), _spec(1), _spec(2), _spec(1, policy="icount")]
        lines = list(server.client.stream(specs, timeout=120.0))

        assert len(lines) == len(specs)
        assert sorted(line["index"] for line in lines) == list(range(len(specs)))
        for line in lines:
            assert line["state"] == "done"
            assert line["result"]["throughput"] > 0

        # Same spec -> same key -> identical result object on every line.
        by_key = {}
        for line in lines:
            by_key.setdefault(line["key"], set()).add(line["result"]["throughput"])
        assert len(by_key) == 3
        assert all(len(v) == 1 for v in by_key.values())

        # Three unique specs executed; the two duplicates were coalesced
        # or cache-served, never re-simulated.
        m = server.client.metrics()
        assert m["exec"]["pairs_executed"] <= 3
        assert m["jobs"]["streams"] == 1
        assert m["jobs"]["streamed_jobs"] == len(specs)

    def test_bad_spec_fails_whole_stream_with_index(self, server):
        specs = [_spec(1), {"workload": "2-MIX", "policy": "nope", **TINY}]
        with pytest.raises(ServiceError) as exc:
            list(server.client.stream(specs))
        assert exc.value.status == 400
        assert "jobs[1]" in str(exc.value)
        # Nothing was admitted: the valid spec at index 0 did not run.
        assert server.client.metrics()["jobs"]["submitted"] == 0

    def test_empty_stream_rejected(self, server):
        with pytest.raises(ServiceError) as exc:
            list(server.client.stream([]))
        assert exc.value.status == 400


class TestRoutedStream:
    def test_lines_carry_shard_and_routed_ids(self, fleet):
        specs = [_spec(seed) for seed in range(1, 7)] + [_spec(1), _spec(2)]
        expected_shards = {_owner(s) for s in specs}
        assert expected_shards == {"s0", "s1"}  # the sweep truly spans shards

        lines = list(fleet.client.stream(specs, timeout=120.0))
        assert sorted(line["index"] for line in lines) == list(range(len(specs)))
        for line in lines:
            assert line["state"] == "done"
            shard, _, bare = line["id"].partition("@")
            assert shard == line["shard"] and bare
            assert line["shard"] == _owner(line["spec"])

        # Duplicate indices got the owning shard's cached/coalesced result.
        by_key = {}
        for line in lines:
            by_key.setdefault(line["key"], set()).add(line["result"]["throughput"])
        assert len(by_key) == 6
        assert all(len(v) == 1 for v in by_key.values())

        m = fleet.client.metrics()
        assert m["router"]["streams"] == 1
        assert m["router"]["streamed_jobs"] == len(specs)

    def test_bad_spec_rejected_before_any_shard_work(self, fleet):
        specs = [_spec(1), {"workload": "nope", "policy": "dwarn", **TINY}]
        with pytest.raises(ServiceError) as exc:
            list(fleet.client.stream(specs))
        assert exc.value.status == 400
        assert "jobs[1]" in str(exc.value)
        assert fleet.client.metrics()["jobs"].get("submitted", 0) == 0

    def test_dead_shard_fails_only_its_indices(self, fleet):
        fleet.kill_shard(0)
        specs = [_spec(seed) for seed in range(1, 9)]
        lines = list(fleet.client.stream(specs, timeout=120.0))
        assert sorted(line["index"] for line in lines) == list(range(len(specs)))
        for line in lines:
            if _owner(line["spec"]) == "s0":
                assert line["state"] == "failed"
                assert "s0" in (line.get("error") or "")
            else:
                assert line["state"] == "done"
                assert line["result"]["throughput"] > 0
