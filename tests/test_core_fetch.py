"""Fetch-unit mechanics: x.y limits, fragmentation, I-cache stalls, machines."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, baseline, deep, small
from repro.core import Simulator, make_policy
from repro.workloads import build_programs, build_single, get_workload

CFG = SimulationConfig(warmup_cycles=0, measure_cycles=3000, trace_length=10_000, seed=13)


def fresh(workload, policy="icount", machine=None, simcfg=CFG):
    programs = (
        build_programs(get_workload(workload), simcfg)
        if "-" in workload
        else build_single(workload, simcfg)
    )
    return Simulator(machine or baseline(), programs, make_policy(policy), simcfg)


class TestFetchLimits:
    def test_fetch_width_bound(self):
        sim = fresh("2-ILP")
        prev = 0
        for _ in range(200):
            before = sim.stats.fetch_slots_used
            sim.run_cycles(1)
            fetched = sim.stats.fetch_slots_used - before
            assert fetched <= sim.machine.proc.fetch_width

    def test_single_thread_machine_14(self):
        """On the small machine only one thread fetches per cycle; total
        per-cycle fetch is capped at 4."""
        sim = fresh("4-MIX", machine=small())
        for _ in range(200):
            before = sim.stats.fetch_slots_used
            sim.run_cycles(1)
            assert sim.stats.fetch_slots_used - before <= 4

    def test_fragmentation_limits_single_thread(self):
        """With taken branches every ~6 instructions, a single thread cannot
        keep an 8-wide fetch busy — the effect the paper's 2.8 mechanism and
        DWarn's 2-thread problem both hinge on."""
        sim = fresh("gzip")
        sim.run_cycles(2000)
        fetched = sim.stats.fetch_slots_used
        assert fetched < 8 * 2000 * 0.8  # well below the theoretical peak

    def test_two_threads_fill_more_bandwidth_than_one(self):
        one = fresh("gzip")
        two = fresh("2-ILP")
        one.run_cycles(2000)
        two.run_cycles(2000)
        assert two.stats.fetch_slots_used > one.stats.fetch_slots_used


class TestMachineVariants:
    @pytest.mark.parametrize("machine", [baseline(), small(), deep()])
    def test_all_policies_run_on_all_machines(self, machine):
        for pol in ("icount", "stall", "flush", "dg", "pdg", "dwarn", "dcpred"):
            wl = "2-MIX"
            sim = fresh(wl, pol, machine)
            res = sim.run()
            assert all(c > 0 for c in res.committed), f"{pol} on {machine.name}"

    def test_deep_pipeline_slower_recovery(self):
        """Deeper front end -> costlier mispredicts -> lower single-thread
        IPC for a branchy benchmark, all else equal."""
        b = fresh("gzip", machine=baseline(), simcfg=CFG)
        d = fresh("gzip", machine=deep(), simcfg=CFG)
        rb = b.run()
        rd = d.run()
        assert rd.ipc[0] < rb.ipc[0]

    def test_deep_memory_hurts_mem_threads_more(self):
        cfg = SimulationConfig(warmup_cycles=500, measure_cycles=4000, trace_length=12_000, seed=3)
        rb = fresh("mcf", machine=baseline(), simcfg=cfg).run()
        rd = fresh("mcf", machine=deep(), simcfg=cfg).run()
        # 200-cycle memory vs 100-cycle: mcf should lose far more than the
        # pipeline-depth effect alone.
        assert rd.ipc[0] < rb.ipc[0] * 0.85

    def test_small_machine_lower_throughput(self):
        rb = fresh("4-ILP", machine=baseline()).run()
        rs = fresh("4-ILP", machine=small()).run()
        assert rs.throughput < rb.throughput


class TestICacheEffects:
    def test_icache_misses_counted(self):
        sim = fresh("gcc")
        sim.run_cycles(3000)
        assert sim.hierarchy.ifetch_misses[0] > 0

    def test_code_footprint_drives_icache_pressure(self):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=4000, trace_length=12_000, seed=7)
        sim_gcc = fresh("gcc", simcfg=cfg)
        sim_gzip = fresh("gzip", simcfg=cfg)
        sim_gcc.run_cycles(4000)
        sim_gzip.run_cycles(4000)
        per_kinstr_gcc = sim_gcc.hierarchy.ifetch_misses[0] / max(1, sim_gcc.stats.committed[0])
        per_kinstr_gzip = sim_gzip.hierarchy.ifetch_misses[0] / max(1, sim_gzip.stats.committed[0])
        assert per_kinstr_gcc > per_kinstr_gzip


class TestPipeBackpressure:
    def test_pipe_never_exceeds_capacity(self):
        sim = fresh("4-MEM", "icount")
        for _ in range(60):
            sim.run_cycles(50)
            assert len(sim.pipe) <= sim._pipe_cap

    def test_blocked_rename_stalls_fetch(self):
        """When the pipe is full and rename frees nothing, fetch must stop
        entirely — the rigid in-order front end."""
        sim = fresh("4-MEM", "icount")
        for _ in range(3000):
            sim.run_cycles(1)
            if len(sim.pipe) >= sim._pipe_cap:
                break
        assert len(sim.pipe) >= sim._pipe_cap, "pipe never filled on 4-MEM"
        # Freeze dispatch for one cycle: with the pipe still full, the fetch
        # stage must not fetch a single instruction.
        orig_dispatch = sim._dispatch
        sim._dispatch = lambda: None
        before = sim.stats.fetch_slots_used
        sim.run_cycles(1)
        sim._dispatch = orig_dispatch
        assert sim.stats.fetch_slots_used == before


class TestDelayedMissDetection:
    """The deep machine's '+3 cycles to determine an L1 miss' (§6)."""

    def test_baseline_counts_at_probe(self):
        assert baseline().mem.l1_detect_extra == 0

    def test_deep_preset_has_extra(self):
        assert deep().mem.l1_detect_extra == 3

    def test_counters_stay_balanced_with_delay(self):
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=3000, trace_length=9000, seed=5)
        sim = fresh("2-MEM", "dwarn", machine=deep(), simcfg=cfg)
        sim.run_cycles(3000)
        sim.validate_state()
        # Drain: stop fetching and let fills land, counters must go to ~0.
        sim.threads[0].fetch_ready_cycle = 10**9
        sim.threads[1].fetch_ready_cycle = 10**9
        sim.run_cycles(1500)
        for tc in sim.threads:
            assert tc.dmiss == 0, "dmiss counter leaked with delayed detection"

    def test_delay_reduces_early_warnings(self):
        """With a detection delay, short (L2-hit) misses that resolve before
        the indication reaches the front end never raise the counter, so
        detection events <= actual L1 misses."""
        cfg = SimulationConfig(warmup_cycles=0, measure_cycles=4000, trace_length=12000, seed=5)
        machine = baseline().with_mem(l1_detect_extra=30)  # exaggerated
        sim = fresh("gzip", "dwarn", machine=machine, simcfg=cfg)
        sim.run_cycles(4000)
        # gzip's misses are almost all L2 hits (11-cycle fills < 30): the
        # counter should essentially never rise.
        counted = sum(
            1 for tc in sim.threads for i in tc.rob if i.dmiss_counted
        )
        assert counted == 0
