"""End-to-end service tests against a live ``dwarn-sim serve`` subprocess.

The acceptance scenario from the service issue, pinned as tests:

- 50 concurrent client submissions (mixed duplicate and unique specs)
  complete with correct results, and the duplicates are served from
  coalesced or cached execution rather than re-simulated;
- a full queue answers 429 with a ``Retry-After`` header;
- SIGTERM mid-queue drains in-flight jobs, cancels unstarted ones, persists
  the result store, and exits 0.

A real subprocess (not an in-loop server) is used deliberately: signal
delivery, port binding, and the ``--port-file`` handshake are part of what
these tests verify. Simulations run at test scale (hundreds of cycles), so
the whole module stays in tier-1 time budgets.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError

#: Tiny-but-real measurement windows (same scale as the unit-test fixtures).
TINY = {"warmup_cycles": 200, "measure_cycles": 1_200, "trace_length": 6_000}


class LiveServer:
    """A ``dwarn-sim serve`` subprocess plus a client bound to it."""

    def __init__(self, tmp: Path, **flags):
        self.tmp = tmp
        self.port_file = tmp / "port"
        self.port_file.unlink(missing_ok=True)  # never read a stale port
        self.store_path = tmp / "results.jsonl"
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--port-file", str(self.port_file),
            "--store", str(self.store_path),
            "--cache-dir", str(tmp / "cache"),
            "--trace-cache", str(tmp / "traces"),
            "--processes", "1",
        ]
        for flag, value in flags.items():
            cmd += [f"--{flag.replace('_', '-')}", str(value)]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died at boot ({self.proc.returncode}): "
                    f"{self.proc.stdout.read()}"
                )
            if self.port_file.exists() and self.port_file.read_text().strip():
                break
            time.sleep(0.02)
        else:
            raise RuntimeError("server never wrote its port file")
        self.port = int(self.port_file.read_text())
        self.client = ServiceClient("127.0.0.1", self.port, timeout=30.0)

    def sigterm_and_wait(self, timeout: float = 60.0) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        out, _ = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=10)


@pytest.fixture
def server(tmp_path):
    srv = LiveServer(tmp_path)
    yield srv
    srv.kill()


class TestConcurrentSubmissions:
    def test_fifty_mixed_clients(self, server):
        """The headline scenario: 50 concurrent submissions, 12 unique specs."""
        unique = [
            {"workload": wl, "policy": pol, "seed": seed, **TINY}
            for wl in ("2-MIX", "2-ILP")
            for pol in ("dwarn", "icount")
            for seed in (1, 2, 3)
        ]
        specs = [unique[i % len(unique)] for i in range(50)]

        def one(spec):
            client = ServiceClient("127.0.0.1", server.port, timeout=30.0)
            job = client.submit(spec)
            record = client.wait(job["id"], timeout=180.0)
            return spec, job, record

        with ThreadPoolExecutor(max_workers=50) as pool:
            outcomes = list(pool.map(one, specs))

        # Every submission completed with a plausible, spec-matching result.
        by_key: dict[str, set[float]] = {}
        for spec, job, record in outcomes:
            assert record["state"] == "done"
            res = record["result"]
            assert res["throughput"] > 0
            assert len(res["ipc"]) == 2  # both workloads are 2-thread
            assert record["spec"]["workload"] == spec["workload"]
            assert record["spec"]["policy"] == spec["policy"]
            by_key.setdefault(job["key"], set()).add(res["throughput"])

        # Identical specs all saw the identical result (one execution's
        # output, not 50 independent runs that happen to agree).
        assert len(by_key) == len(unique)
        for throughputs in by_key.values():
            assert len(throughputs) == 1

        # The server executed each unique pair at most once; the other
        # ~38 submissions were served by coalescing or the caches.
        m = server.client.metrics()
        assert m["exec"]["pairs_executed"] <= len(unique)
        assert (
            m["cache"]["coalesced"]
            + m["cache"]["store_hits"]
            + m["cache"]["runner_cache_hits"]
        ) == 50 - m["exec"]["pairs_executed"]
        assert m["jobs"]["submitted"] == 50
        assert m["jobs"]["failed"] == 0
        assert m["queue"]["depth"] == 0 and m["queue"]["in_flight"] == 0
        assert m["latency"]["p95"] >= m["latency"]["p50"] >= 0.0

    def test_resubmit_after_completion_hits_store(self, server):
        spec = {"workload": "2-MEM", "policy": "flush", "seed": 9, **TINY}
        first = server.client.submit(spec)
        server.client.wait(first["id"], timeout=120.0)
        again = server.client.submit(spec)
        assert again["state"] == "done"
        assert again["source"] in ("store", "disk", "memory")
        assert again["id"] != first["id"]  # new job id, same cached result
        r1 = server.client.result(first["id"])["result"]
        r2 = server.client.result(again["id"])["result"]
        assert r1["throughput"] == r2["throughput"]


class TestValidationAndRouting:
    def test_bad_specs_rejected(self, server):
        for bad, match in (
            ({"workload": "2-MIX"}, "policy"),
            ({"workload": "nope", "policy": "dwarn"}, "workload"),
            ({"workload": "2-MIX", "policy": "nope"}, "policy"),
            ({"workload": "2-MIX", "policy": "dwarn", "polcy": 1}, "polcy"),
        ):
            with pytest.raises(ServiceError) as exc:
                server.client.submit(bad)
            assert exc.value.status == 400
            assert match in str(exc.value)

    def test_unknown_endpoints_and_ids(self, server):
        status, _, _ = server.client.request("GET", "/nope")
        assert status == 404
        with pytest.raises(ServiceError) as exc:
            server.client.status("nonexistent")
        assert exc.value.status == 404
        status, _, _ = server.client.request("GET", "/v1/jobs")
        assert status == 405

    def test_healthz_shape(self, server):
        h = server.client.healthz()
        assert h["status"] == "ok"
        assert h["protocol_version"] == 1
        assert h["trace_artifact"]["magic"] == "DWTR"
        assert h["result_cache_version"] >= 4


class TestBackpressure:
    def test_full_queue_429_with_retry_after(self, tmp_path):
        """Capacity 2, dispatcher stalled: the 3rd unique spec must bounce."""
        srv = LiveServer(
            tmp_path, queue_capacity=2, dispatch_delay=30, batch_max=1
        )
        try:
            statuses = []
            for seed in (1, 2, 3, 4):
                spec = {"workload": "2-MIX", "policy": "dwarn", "seed": seed, **TINY}
                status, payload, headers = srv.client.request("POST", "/v1/jobs", spec)
                statuses.append(status)
                if status == 429:
                    assert "Retry-After" in headers
                    assert int(headers["Retry-After"]) >= 1
                    assert payload["retry_after"] >= 1
            assert statuses == [202, 202, 429, 429]

            # Duplicates of a queued spec coalesce even while the queue is full.
            dup = srv.client.submit(
                {"workload": "2-MIX", "policy": "dwarn", "seed": 1, **TINY}
            )
            assert dup["coalesced"] >= 1

            m = srv.client.metrics()
            assert m["jobs"]["rejected"] == 2
            assert m["queue"]["depth"] == 2
        finally:
            srv.kill()


class TestShutdownDrain:
    def test_sigterm_drains_in_flight_and_persists(self, tmp_path):
        """SIGTERM mid-queue: running work finishes, queued work cancels,
        the store survives, exit status is 0."""
        srv = LiveServer(tmp_path, dispatch_delay=0.4, batch_max=1)
        try:
            specs = [
                {"workload": "2-MIX", "policy": pol, "seed": s, **TINY}
                for pol, s in (("dwarn", 1), ("icount", 1), ("flush", 1), ("stall", 1))
            ]
            jobs = [srv.client.submit(sp) for sp in specs]
            # Let the dispatcher pick up (at most) the first batch, then drain.
            time.sleep(0.6)
            status, out = srv.sigterm_and_wait()
            assert status == 0, out
            assert "drained" in out

            # The store file survived and contains only completed jobs.
            records = [
                json.loads(line)
                for line in srv.store_path.read_text().splitlines()
                if line.strip()
            ]
            assert all(r["state"] == "done" for r in records)
            done_keys = {r["key"] for r in records}
            assert 0 < len(done_keys) < len(jobs)  # drained some, cancelled rest
            assert all(r["result"]["throughput"] > 0 for r in records)

            # A restart on the same store serves those results instantly.
            srv2 = LiveServer(tmp_path)
            try:
                completed_key = records[0]["key"]
                spec = next(
                    sp for sp, j in zip(specs, jobs) if j["key"] == completed_key
                )
                again = srv2.client.submit(spec)
                assert again["state"] == "done" and again["source"] == "store"
            finally:
                srv2.kill()
        finally:
            srv.kill()
