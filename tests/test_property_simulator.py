"""Property-based tests: the simulator must uphold its invariants for *any*
reasonable configuration, workload and policy — not just the paper's points.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SimulationConfig, baseline
from repro.core import POLICIES, Simulator, make_policy
from repro.workloads import WORKLOADS, build_programs, get_workload


def audit(sim: Simulator) -> None:
    """Resource-conservation audit: the simulator's built-in validator."""
    sim.validate_state()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(sorted(WORKLOADS)),
    policy=st.sampled_from(sorted(POLICIES)),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_invariants_for_any_workload_policy_seed(workload, policy, seed):
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=700, trace_length=3000, seed=seed
    )
    programs = build_programs(get_workload(workload), simcfg)
    sim = Simulator(baseline(), programs, make_policy(policy), simcfg)
    sim.run_cycles(700)
    audit(sim)
    # Forward progress: something committed on some thread.
    assert sum(sim.stats.committed) > 0


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    fetch_width=st.sampled_from([2, 4, 8]),
    fetch_threads=st.sampled_from([1, 2, 4]),
    int_queue=st.sampled_from([8, 32]),
    frontend_depth=st.sampled_from([2, 4, 9]),
)
def test_invariants_for_any_machine_geometry(
    fetch_width, fetch_threads, int_queue, frontend_depth
):
    machine = baseline().with_proc(
        fetch_width=fetch_width,
        fetch_threads=min(fetch_threads, 8),
        issue_width=fetch_width,
        commit_width=fetch_width,
        int_queue=int_queue,
        frontend_depth=frontend_depth,
    )
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=600, trace_length=3000, seed=5
    )
    programs = build_programs(get_workload("2-MIX"), simcfg)
    sim = Simulator(machine, programs, make_policy("dwarn"), simcfg)
    sim.run_cycles(600)
    audit(sim)
    assert sum(sim.stats.committed) > 0


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_determinism_property(seed):
    simcfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=400, trace_length=2500, seed=seed
    )

    def one():
        programs = build_programs(get_workload("2-MEM"), simcfg)
        sim = Simulator(baseline(), programs, make_policy("flush"), simcfg)
        sim.run_cycles(400)
        return (
            list(sim.stats.committed),
            list(sim.stats.fetched),
            list(sim.stats.squashed_flush),
        )

    assert one() == one()
