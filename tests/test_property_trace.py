"""Property-based tests for the trace substrate across benchmarks and seeds."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa.opcodes import BranchKind, OpClass
from repro.isa.registers import REG_NONE
from repro.trace import PROFILES, generate_trace, get_profile

BENCH = st.sampled_from(sorted(PROFILES))
SEED = st.integers(min_value=0, max_value=2**20)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bench=BENCH, seed=SEED, tid=st.integers(min_value=0, max_value=7))
def test_successor_consistency_property(bench, seed, tid):
    """trace[i+1] is always the architectural successor of trace[i]."""
    trace = generate_trace(get_profile(bench), 1500, base=tid << 30, seed=seed)
    for i in range(len(trace) - 1):
        if trace.op[i] == OpClass.BRANCH:
            expected = trace.target[i] if trace.taken[i] else trace.pc[i] + 4
        else:
            expected = trace.pc[i] + 4
        assert trace.pc[i + 1] == expected


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bench=BENCH, seed=SEED)
def test_record_wellformedness_property(bench, seed):
    """Every record satisfies the structural contract the simulator assumes."""
    trace = generate_trace(get_profile(bench), 1200, base=1 << 30, seed=seed)
    for i in range(len(trace)):
        op = trace.op[i]
        if op in (OpClass.LOAD, OpClass.STORE):
            assert trace.addr[i] >> 30 == 1  # inside the thread's slice
        if op == OpClass.STORE:
            assert trace.dest[i] == REG_NONE
        if op == OpClass.LOAD:
            assert 0 <= trace.dest[i] < 28
        if op == OpClass.FP:
            assert trace.dest[i] >= 32
        if op != OpClass.BRANCH:
            assert trace.brkind[i] == BranchKind.NONE
        else:
            assert trace.brkind[i] != BranchKind.NONE
            if trace.taken[i]:
                assert trace.target[i] > 0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bench=BENCH, seed=SEED)
def test_wrap_patch_property(bench, seed):
    trace = generate_trace(get_profile(bench), 900, base=2 << 30, seed=seed)
    last = len(trace) - 1
    assert trace.brkind[last] == BranchKind.JUMP
    assert trace.target[last] == trace.pc[0]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(bench=BENCH, seed=SEED)
def test_generation_deterministic_property(bench, seed):
    from repro.trace import clear_trace_cache

    a = generate_trace(get_profile(bench), 600, base=0, seed=seed)
    sig_a = (tuple(a.pc[:100]), tuple(a.addr[:100]))
    clear_trace_cache()
    b = generate_trace(get_profile(bench), 600, base=0, seed=seed)
    assert sig_a == (tuple(b.pc[:100]), tuple(b.addr[:100]))
