"""Tests for the memory hierarchy: latencies, MSHR merging, TLB, stats."""

from __future__ import annotations

import pytest

from repro.config.memory import MemoryConfig, TLBConfig
from repro.mem import MemoryHierarchy, TLB


def make_hier(n=1) -> MemoryHierarchy:
    return MemoryHierarchy(MemoryConfig(), n)


# Addresses on distinct pages to exercise the TLB independently of caches.
A = 0x10000
B = 0x20000


class TestLoadTiming:
    def test_l1_hit_latency(self):
        h = make_hier()
        h.load_access(0, A, 0)          # cold: install line + page
        res = h.load_access(0, A, 400)  # hot (past the fill cycle)
        assert res.latency == 1
        assert not res.l1_miss

    def test_l2_hit_latency(self):
        h = make_hier()
        h.load_access(0, A, 0)  # in L1 + L2 now
        # Evict from L1 by filling two conflicting lines (same set, 2-way).
        conflict1 = A + 512 * 64
        conflict2 = A + 2 * 512 * 64
        h.load_access(0, conflict1, 200)
        h.load_access(0, conflict2, 400)
        res = h.load_access(0, A, 600)
        assert res.l1_miss and not res.l2_miss
        assert res.latency == 11  # 1 (L1) + 10 (L2)

    def test_memory_latency(self):
        h = make_hier()
        res = h.load_access(0, A, 0)
        assert res.l1_miss and res.l2_miss
        # 1 + 10 + 100 (+160 TLB miss on first touch of the page)
        assert res.latency == 111 + 160
        assert res.tlb_miss

    def test_fill_cycle_reported(self):
        h = make_hier()
        h.load_access(0, B, 0)  # warm the page
        res = h.load_access(0, A + (1 << 25), 50)
        assert res.fill_cycle == 50 + res.latency


class TestMSHRMerging:
    def test_second_access_merges(self):
        h = make_hier()
        h.load_access(0, B, 0)
        r1 = h.load_access(0, A, 100)   # miss, fill at 100+lat
        r2 = h.load_access(0, A + 8, 110)  # same line, still outstanding
        assert r2.merged
        assert r2.l1_miss
        assert r2.l2_miss == r1.l2_miss
        assert r2.fill_cycle == r1.fill_cycle
        assert r2.latency == r1.fill_cycle - 110

    def test_access_after_fill_hits(self):
        h = make_hier()
        r1 = h.load_access(0, A, 0)
        res = h.load_access(0, A, r1.fill_cycle + 1)
        assert not res.l1_miss

    def test_fill_arrived_cleans_outstanding(self):
        h = make_hier()
        r1 = h.load_access(0, A, 0)
        line = A >> h.line_shift
        assert line in h._outstanding_d
        h.fill_arrived(line)
        assert line not in h._outstanding_d
        # And the tag array still holds the line.
        res = h.load_access(0, A, r1.fill_cycle + 5)
        assert not res.l1_miss


class TestStores:
    def test_store_allocates_line_for_later_load(self):
        h = make_hier()
        r = h.store_access(0, A, 0)
        assert r.l1_miss
        res = h.load_access(0, A, r.fill_cycle + 1)
        assert not res.l1_miss

    def test_store_stats_separate(self):
        h = make_hier()
        h.store_access(0, A, 0)
        assert h.stores[0] == 1
        assert h.loads[0] == 0
        assert h.store_l1_misses[0] == 1
        assert h.load_l1_misses[0] == 0


class TestIFetch:
    def test_miss_then_ready(self):
        h = make_hier()
        pc = 0x5000_0000
        hit, ready = h.ifetch_access(0, pc, 0)
        assert not hit
        assert ready == 0 + 1 + 10 + 100  # icache + L2 + memory
        # Before the fill: still a miss with the same ready cycle.
        hit2, ready2 = h.ifetch_access(0, pc, ready - 5)
        assert not hit2 and ready2 == ready
        # After the fill: hit.
        hit3, _ = h.ifetch_access(0, pc, ready)
        assert hit3

    def test_l2_hit_path(self):
        h = make_hier()
        pc = 0x5000_0000
        _, ready = h.ifetch_access(0, pc, 0)
        # Evict from icache (2-way, 512 sets) but not from L2.
        h.ifetch_access(0, pc + 512 * 64, ready + 1)
        h.ifetch_access(0, pc + 2 * 512 * 64, ready + 200)
        hit, ready2 = h.ifetch_access(0, pc, ready + 400)
        assert not hit
        assert ready2 == ready + 400 + 1 + 10

    def test_ifetch_miss_stat(self):
        h = make_hier()
        h.ifetch_access(0, 0x6000_0000, 0)
        assert h.ifetch_misses[0] == 1


class TestTLB:
    def test_miss_once_per_page(self):
        t = TLB(TLBConfig())
        assert not t.access(0x0)
        assert t.access(0x100)          # same 8KB page
        assert not t.access(0x4000)     # next page

    def test_lru_within_set(self):
        t = TLB(TLBConfig(entries=4, assoc=2, page_bytes=8192))
        # pages 0, 2, 4 map to set 0 (2 sets).
        t.access(0 * 8192)
        t.access(2 * 8192)
        t.access(4 * 8192)  # evicts page 0
        assert not t.access(0 * 8192)

    def test_tlb_penalty_in_load(self):
        h = make_hier()
        r1 = h.load_access(0, A, 0)
        assert r1.tlb_miss
        r2 = h.load_access(0, A + 64, 500)  # same page
        assert not r2.tlb_miss


class TestPerThreadStats:
    def test_threads_tracked_independently(self):
        h = make_hier(2)
        h.load_access(0, A, 0)
        h.load_access(1, B + (1 << 30), 0)
        h.load_access(1, B + (1 << 30), 300)
        assert h.loads == [1, 2]
        assert h.load_l1_misses == [1, 1]

    def test_miss_rates_helper(self):
        h = make_hier()
        h.load_access(0, A, 0)             # L1+L2 miss
        h.load_access(0, A, 300)           # hit
        l1, l2, ratio = h.load_miss_rates(0)
        assert l1 == pytest.approx(0.5)
        assert l2 == pytest.approx(0.5)
        assert ratio == pytest.approx(1.0)

    def test_count_stats_false_skips_counting(self):
        h = make_hier()
        h.load_access(0, A, 0, count_stats=False)
        assert h.loads[0] == 0

    def test_snapshot_copies(self):
        h = make_hier()
        h.load_access(0, A, 0)
        snap = h.snapshot()
        h.load_access(0, B, 300)
        assert snap["loads"][0] == 1
        assert h.loads[0] == 2
