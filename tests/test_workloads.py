"""Tests for Table 2(b) workloads and the thread-program builder."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.trace import MEM_BENCHMARKS, get_profile
from repro.workloads import (
    WORKLOADS,
    build_programs,
    build_single,
    get_workload,
    workloads_for_machine,
)


class TestTable2b:
    def test_twelve_workloads(self):
        assert len(WORKLOADS) == 12

    def test_sizes_and_classes(self):
        for name, spec in WORKLOADS.items():
            size, cls = name.split("-")
            assert spec.num_threads == int(size)
            assert spec.wl_class == cls
            assert spec.size_class == int(size)

    def test_exact_paper_composition(self):
        assert get_workload("2-MEM").benchmarks == ("mcf", "twolf")
        assert get_workload("4-MIX").benchmarks == ("gzip", "twolf", "bzip2", "mcf")
        assert get_workload("8-MEM").benchmarks == (
            "mcf", "twolf", "vpr", "parser", "mcf", "twolf", "vpr", "parser",
        )
        assert get_workload("8-ILP").benchmarks == (
            "gzip", "bzip2", "eon", "gcc", "crafty", "perlbmk", "gap", "vortex",
        )

    def test_mem_workloads_all_mem(self):
        for name, spec in WORKLOADS.items():
            if spec.wl_class == "MEM":
                assert all(b in MEM_BENCHMARKS for b in spec.benchmarks)

    def test_ilp_workloads_all_ilp(self):
        for name, spec in WORKLOADS.items():
            if spec.wl_class == "ILP":
                assert all(
                    get_profile(b).thread_type == "ILP" for b in spec.benchmarks
                )

    def test_mix_workloads_are_mixed(self):
        for name, spec in WORKLOADS.items():
            if spec.wl_class == "MIX":
                types = {get_profile(b).thread_type for b in spec.benchmarks}
                assert types == {"ILP", "MEM"}

    def test_replicated_benchmarks_only_in_mem(self):
        for name, spec in WORKLOADS.items():
            if spec.wl_class != "MEM":
                assert len(set(spec.benchmarks)) == len(spec.benchmarks), name

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="4-MIX"):
            get_workload("16-ALL")

    def test_invalid_benchmark_rejected(self):
        from repro.workloads.specint import WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec("2-BAD", ("gzip", "nonesuch"))

    def test_workloads_for_machine_filters(self):
        four = workloads_for_machine(4)
        assert {w.name for w in four} == {
            "2-ILP", "2-MIX", "2-MEM", "4-ILP", "4-MIX", "4-MEM",
        }
        assert len(workloads_for_machine(8)) == 12

    def test_workloads_for_machine_ordering(self):
        names = [w.name for w in workloads_for_machine(8)]
        assert names[:3] == ["2-ILP", "2-MIX", "2-MEM"]
        assert names[-1] == "8-MEM"


class TestBuilder:
    CFG = SimulationConfig(trace_length=2048, seed=9)

    def test_single(self):
        programs = build_single("mcf", self.CFG)
        assert len(programs) == 1
        assert programs[0].profile.name == "mcf"
        assert len(programs[0].trace) == 2048

    def test_threads_get_disjoint_bases(self):
        programs = build_programs(get_workload("4-MIX"), self.CFG)
        bases = {p.trace.base for p in programs}
        assert len(bases) == 4
        assert bases == {0, 1 << 30, 2 << 30, 3 << 30}

    def test_duplicates_get_distinct_instances(self):
        programs = build_programs(get_workload("6-MEM"), self.CFG)
        # mcf appears at slots 0 and 4.
        assert programs[0].profile.name == programs[4].profile.name == "mcf"
        assert programs[0].trace.instance == 0
        assert programs[4].trace.instance == 1
        assert programs[0].trace.pc[:50] != programs[4].trace.pc[:50]

    def test_wp_supplier_shares_base(self):
        programs = build_programs(get_workload("2-MIX"), self.CFG)
        for p in programs:
            assert p.wp_supplier.base == p.trace.base
